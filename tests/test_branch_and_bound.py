"""Branch and bound: exactness vs enumeration, pruning, planner wiring."""

import random
from fractions import Fraction

import pytest

from repro.core import CommModel, Mapping, make_application
from repro.optimize import (
    Effort,
    bb_minlatency,
    bb_minperiod,
    exhaustive_minlatency,
    exhaustive_minperiod,
    iter_forests,
    make_latency_objective,
    make_period_objective,
)
from repro.planner import AUTO_EXHAUSTIVE_MAX, EvaluationCache, solve
from repro.workloads import fig1_example
from repro.workloads.generators import (
    alternating_platform,
    random_application,
    random_platform,
)
from repro.workloads.paper import (
    b1_application,
    b2_latency_ports,
    b3_period_ports,
)

F = Fraction


class TestPeriodExactness:
    """bb_minperiod optimises exactly what the enumeration optimises."""

    def test_matches_enumeration_on_random_instances(self):
        checked = 0
        for seed in range(60):
            n = 2 + seed % 4
            app = random_application(
                n, seed=seed, filter_fraction=(0.3, 0.6, 0.9)[seed % 3]
            )
            exact, _ = exhaustive_minperiod(app, CommModel.OVERLAP)
            value, graph, stats = bb_minperiod(
                app, make_period_objective(CommModel.OVERLAP)
            )
            assert value == exact, (seed, value, exact)
            assert graph.is_forest
            checked += 1
        assert checked == 60

    @pytest.mark.parametrize("model", [CommModel.INORDER, CommModel.OUTORDER])
    def test_one_port_models_match_enumeration(self, model):
        # The bound effort is cheap enough to sweep; the heuristic effort
        # runs a scheduler per candidate, so only tiny instances compare.
        for seed in range(10):
            app = random_application(2 + seed % 3, seed=seed)
            exact, _ = exhaustive_minperiod(app, model, effort=Effort.BOUND)
            value, _, _ = bb_minperiod(
                app, make_period_objective(model, Effort.BOUND), model=model
            )
            assert value == exact, (seed, model)
        for seed in range(3):
            app = random_application(3, seed=seed + 20)
            exact, _ = exhaustive_minperiod(app, model, effort=Effort.HEURISTIC)
            value, _, _ = bb_minperiod(
                app, make_period_objective(model, Effort.HEURISTIC), model=model
            )
            assert value == exact, (seed, model)

    def test_rejects_precedence(self):
        app = make_application(
            [("a", 1, 1), ("b", 1, 1)], precedence=[("a", "b")]
        )
        with pytest.raises(ValueError):
            bb_minperiod(app, make_period_objective(CommModel.OVERLAP))

    def test_single_service(self):
        app = make_application([("only", 7, "1/2")])
        value, graph, _ = bb_minperiod(
            app, make_period_objective(CommModel.OVERLAP)
        )
        assert value == 7 and graph.edges == frozenset()

    def test_node_limit_returns_incumbent(self):
        app = random_application(6, seed=4)
        value, graph, stats = bb_minperiod(
            app, make_period_objective(CommModel.OVERLAP), node_limit=1
        )
        # The incumbent (greedy + local search) is still a valid upper bound.
        exact, _ = exhaustive_minperiod(app, CommModel.OVERLAP)
        assert value >= exact
        assert stats.expanded <= 1


class TestLatencyExactness:
    def test_matches_dag_enumeration(self):
        for seed in range(25):
            n = 2 + seed % 3
            app = random_application(n, seed=seed + 77)
            exact, _ = exhaustive_minlatency(app, CommModel.OVERLAP)
            value, _, _ = bb_minlatency(
                app, make_latency_objective(CommModel.OVERLAP)
            )
            assert value == exact, seed

    def test_nonforest_optimum_is_found(self):
        # A fork-join shape where the optimal latency plan is not a forest
        # would be missed by forest-only search; the DAG space must win.
        for seed in range(6):
            app = random_application(4, seed=seed + 300, filter_fraction=0.9)
            exact, _ = exhaustive_minlatency(app, CommModel.OVERLAP)
            value, _, _ = bb_minlatency(
                app, make_latency_objective(CommModel.OVERLAP)
            )
            assert value == exact

    def test_size_guard(self):
        app = random_application(9, seed=1)
        with pytest.raises(ValueError):
            bb_minlatency(app, make_latency_objective(CommModel.OVERLAP))


class TestHeterogeneousExactness:
    """Pruning divides by the fastest resources, so het stays exact."""

    def test_pinned_mapping_matches_enumeration(self, pinned_mapping):
        for seed in range(12):
            n = 2 + seed % 3
            app = random_application(n, seed=seed + 40)
            platform = random_platform(n, seed=seed)
            mapping = pinned_mapping(app, platform)
            objective = make_period_objective(
                CommModel.OVERLAP, Effort.EXACT, platform, mapping
            )
            exact = min(objective(g) for g in iter_forests(app))
            value, _, _ = bb_minperiod(
                app, objective, platform=platform, mapping=mapping
            )
            assert value == exact, seed

    def test_free_mapping_matches_enumeration(self):
        for seed in range(6):
            n = 2 + seed % 2
            app = random_application(n, seed=seed + 60)
            platform = random_platform(n + 1, seed=seed + 5)
            objective = make_period_objective(
                CommModel.OVERLAP, Effort.EXACT, platform, None
            )
            exact = min(objective(g) for g in iter_forests(app))
            value, _, _ = bb_minperiod(
                app, objective, platform=platform, mapping=None
            )
            assert value == exact, seed


class TestCatalogWorkloads:
    """The named paper instances, as far as enumeration can certify."""

    def test_fig1_application_all_models(self):
        # OVERLAP is exact at every effort; the one-port models compare at
        # the bound effort (the heuristic effort schedules each of the
        # 1296 candidate forests — minutes of MCR, same parity statement).
        app = fig1_example().application
        for model, effort in [
            (CommModel.OVERLAP, "exact"),
            (CommModel.INORDER, "bound"),
            (CommModel.OUTORDER, "bound"),
        ]:
            result = solve(
                app, objective="period", model=model,
                method="branch-and-bound", effort=effort,
                schedule=False, cache=EvaluationCache(),
            )
            reference = solve(
                app, objective="period", model=model, method="exhaustive",
                effort=effort, schedule=False, cache=EvaluationCache(),
            )
            assert result.value == reference.value, model

    def test_fig1_latency(self):
        # The bound effort keeps the 29281-DAG reference sweep tractable
        # (higher efforts schedule every candidate DAG); parity across
        # efforts is covered on smaller instances in TestLatencyExactness.
        app = fig1_example().application
        result = solve(app, objective="latency", model="overlap",
                       method="branch-and-bound", effort="bound",
                       schedule=False, cache=EvaluationCache())
        reference = solve(app, objective="latency", model="overlap",
                          method="exhaustive", effort="bound",
                          schedule=False, cache=EvaluationCache())
        assert result.value == reference.value

    def test_hetdemo_on_demo2(self):
        # The platform-dependent optimum: the empty forest, period 2.
        from repro.planner import load_workload

        wl = load_workload("hetdemo")
        result = solve(wl.application, objective="period", model="overlap",
                       method="branch-and-bound", platform=wl.platform,
                       schedule=False, cache=EvaluationCache())
        assert result.value == F(2)
        assert result.graph.edges == frozenset()

    @pytest.mark.parametrize(
        "maker,size", [(b1_application, 5),
                       (lambda: b2_latency_ports().application, 6),
                       (lambda: b3_period_ports().application, 6)]
    )
    def test_restricted_paper_instances(self, maker, size):
        # The full instances (up to n=202) are far beyond enumeration; the
        # restrictions keep the same cost/selectivity structure and stay
        # certifiable both ways.
        app = maker()
        sub = app.restricted_to(list(app.names)[:size])
        exact, _ = exhaustive_minperiod(sub, CommModel.OVERLAP)
        value, _, _ = bb_minperiod(
            sub, make_period_objective(CommModel.OVERLAP)
        )
        assert value == exact

    @pytest.mark.parametrize(
        "maker,size", [(b1_application, 5),
                       (lambda: b3_period_ports().application, 5)]
    )
    def test_restricted_het_variants(self, maker, size, pinned_mapping):
        # The b*het variants run on alternating-speed platforms; the same
        # platforms restricted to the sub-instance stay certifiable.
        app = maker()
        sub = app.restricted_to(list(app.names)[:size])
        platform = alternating_platform(size)
        mapping = pinned_mapping(sub, platform)
        objective = make_period_objective(
            CommModel.OVERLAP, Effort.EXACT, platform, mapping
        )
        exact = min(objective(g) for g in iter_forests(sub))
        value, _, _ = bb_minperiod(
            sub, objective, platform=platform, mapping=mapping
        )
        assert value == exact


class TestPlannerWiring:
    def test_registered_and_auto_selected(self):
        app = random_application(AUTO_EXHAUSTIVE_MAX["period"], seed=9)
        result = solve(app, schedule=False, cache=EvaluationCache())
        assert result.method == "branch-and-bound"
        assert result.requested_method == "auto"
        assert result.stats.extras["certified"] is True
        assert result.stats.extras["space"] == "forests"

    def test_prunes_relative_to_enumeration(self):
        app = random_application(6, seed=2)
        result = solve(app, method="branch-and-bound", schedule=False,
                       cache=EvaluationCache())
        enumeration = solve(app, method="exhaustive", schedule=False,
                            cache=EvaluationCache())
        assert result.value == enumeration.value
        # 6 services: 16807 forests enumerated; bb must evaluate far fewer
        # complete graphs than that.
        assert enumeration.stats.graphs_considered == 16807
        assert result.stats.graphs_considered < 1000

    def test_solver_options_forwarded(self):
        # seed 0 needs real expansions (the root bound does not certify
        # the incumbent), so a zero node budget must report uncertified.
        app = random_application(5, seed=0)
        result = solve(app, method="branch-and-bound", schedule=False,
                       node_limit=0, cache=EvaluationCache())
        assert result.stats.extras["certified"] is False

    def test_n9_well_past_enumeration_caps(self):
        # ~10^8 forests at n=9: plain enumeration is infeasible, branch
        # and bound certifies the optimum in well under a minute (the
        # benchmark records the actual wall time).
        app = random_application(9, seed=4, filter_fraction=0.6)
        result = solve(app, method="branch-and-bound", schedule=False,
                       cache=EvaluationCache())
        ls = solve(app, method="local-search", schedule=False,
                   cache=EvaluationCache())
        assert result.value <= ls.value
        assert result.stats.extras["certified"] is True
