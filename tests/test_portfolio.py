"""Anytime portfolio solving: ``solve(deadline=...)`` and the racer engine.

The contracts under test:

1. ``deadline=None`` is the identity — every catalog workload solves to
   exactly the result it solved to before the anytime layer existed.
2. Any deadline — including one that has already expired — returns a
   valid plan (the greedy racer runs unconditionally), never an error.
3. A sufficient budget reproduces the unbudgeted result (the portfolio's
   primary racer is the method the caller asked for).
4. Fixed seeds make the portfolio deterministic; among equal-valued
   racers the *earliest in priority order* wins (greedy, primary,
   seeded local searches, branch and bound last).
5. Process mode (``workers > 0``) returns the same value as serial when
   every racer completes.
"""

import json
import random
from fractions import Fraction as F

import pytest

from repro.core import CommModel, Exactness
from repro.optimize.evaluation import Effort
from repro.optimize.portfolio import (
    PortfolioOutcome,
    Racer,
    build_racers,
    portfolio_search,
    random_forest,
    run_portfolio,
)
from repro.planner import EvaluationCache, load_workload, solve, solve_many, workload_names
from repro.workloads.generators import random_application

#: Catalog specs small enough for unit-test budgets (b1/b1het are n=202 —
#: their solve path is byte-identical code, just slow).
CATALOG = [
    name for name in workload_names()
    if not name.startswith("b1") and load_workload(name).application is not None
]


def _workload_args(spec):
    w = load_workload(spec)
    return w.application, {"platform": w.platform, "mapping": w.mapping}


class TestDeadlineNoneIsIdentity:
    def test_full_catalog(self):
        for spec in CATALOG:
            app, extra = _workload_args(spec)
            cache = EvaluationCache()
            base = solve(app, schedule=False, cache=cache, **extra)
            again = solve(app, schedule=False, cache=cache, deadline=None, **extra)
            assert again.value == base.value, spec
            assert again.graph.edges == base.graph.edges, spec
            assert again.method == base.method, spec
            assert again.deadline is None and again.budget_exhausted is None
            assert again.trajectory is None


class TestAnytimeValidity:
    def test_expired_deadline_still_returns_valid_plan(self):
        for spec in ["fig1", "b3", "chain", "forkjoin", "star", "random"]:
            app, extra = _workload_args(spec)
            result = solve(app, deadline=0.0, cache=EvaluationCache(), **extra)
            assert result.method == "portfolio"
            assert result.budget_exhausted is True
            assert result.graph.is_forest
            assert result.plan is not None and result.plan.is_valid()
            # The reported value really is the graph's objective value.
            check = EvaluationCache().objective(
                "period", CommModel.OVERLAP, Effort.HEURISTIC,
                extra["platform"], extra["mapping"],
            )
            assert result.value == check(result.graph), spec
            assert result.trajectory and result.trajectory[0][2] == "greedy"

    def test_tiny_deadline_random_sweep(self):
        for seed in range(12):
            n = random.Random(seed).randrange(3, 9)
            app = random_application(n, seed=seed, filter_fraction=0.5)
            result = solve(
                app, deadline=1e-9, schedule=False, cache=EvaluationCache()
            )
            assert result.budget_exhausted is True, seed
            assert result.graph.is_forest, seed
            check = EvaluationCache().objective("period", CommModel.OVERLAP)
            assert result.value == check(result.graph), seed

    def test_sufficient_budget_matches_unbudgeted(self):
        for seed in range(8):
            app = random_application(5, seed=seed + 20, filter_fraction=0.6)
            base = solve(app, schedule=False, cache=EvaluationCache())
            timed = solve(
                app, schedule=False, cache=EvaluationCache(), deadline=120.0
            )
            assert timed.method == "portfolio"
            assert timed.requested_method == "auto"
            assert timed.value == base.value, seed
            assert timed.budget_exhausted is False, seed

    def test_latency_objective_deadline(self):
        app = random_application(4, seed=5, filter_fraction=0.5)
        base = solve(app, objective="latency", schedule=False,
                     cache=EvaluationCache())
        timed = solve(app, objective="latency", schedule=False,
                      cache=EvaluationCache(), deadline=120.0)
        assert timed.value == base.value
        assert timed.budget_exhausted is False

    def test_as_dict_carries_anytime_fields(self):
        app = random_application(4, seed=9)
        result = solve(app, deadline=60.0, schedule=False,
                       cache=EvaluationCache())
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["deadline"] == 60.0
        assert payload["budget_exhausted"] is False
        assert payload["trajectory"][0]["racer"] == "greedy"


class TestDeterminism:
    def test_fixed_seeds_fixed_outcome(self):
        for seed in range(6):
            app = random_application(6, seed=seed + 40, filter_fraction=0.5)
            runs = []
            for _ in range(2):
                cache = EvaluationCache()
                fn = cache.objective(
                    "period", CommModel.OVERLAP,
                    exactness=Exactness.CERTIFIED,
                )
                out = portfolio_search(
                    app, fn, objective="period", model=CommModel.OVERLAP,
                    effort=Effort.HEURISTIC, seeds=3, seed_base=17,
                )
                runs.append(out)
            a, b = runs
            assert a.value == b.value, seed
            assert a.graph.edges == b.graph.edges, seed
            assert [t[2] for t in a.trajectory] == [t[2] for t in b.trajectory]

    def test_earliest_racer_wins_ties(self):
        # Two racers return the same value: the incumbent only moves on a
        # strict improvement, so the priority-order earliest racer owns
        # the result — the documented tie-break.
        app = random_application(3, seed=1)
        fn = EvaluationCache().objective("period", CommModel.OVERLAP)
        graph = random_forest(app, random.Random(0))
        value = fn(graph)
        racers = [
            Racer("first", lambda r, i: (value, graph, {})),
            Racer("second", lambda r, i: (value, graph, {})),
        ]
        out = run_portfolio(racers)
        assert [t[2] for t in out.trajectory] == ["first"]
        assert out.budget_exhausted is False

    def test_random_forest_is_seed_deterministic(self):
        app = random_application(7, seed=3)
        for seed in range(10):
            g1 = random_forest(app, random.Random(seed))
            g2 = random_forest(app, random.Random(seed))
            assert g1.edges == g2.edges
            assert g1.is_forest
            assert set(g1.nodes) == set(app.names)

    def test_roster_order(self):
        app = random_application(5, seed=2)
        fn = EvaluationCache().objective("period", CommModel.OVERLAP)
        names = [
            r.name
            for r in build_racers(
                app, fn, objective="period", model=CommModel.OVERLAP,
                effort=Effort.HEURISTIC, primary="auto", seeds=2,
            )
        ]
        assert names == [
            "greedy", "branch-and-bound", "local-search",
            "local-search[seed=17]", "local-search[seed=18]",
        ]
        names = [
            r.name
            for r in build_racers(
                app, fn, objective="period", model=CommModel.OVERLAP,
                effort=Effort.HEURISTIC, primary="local-search", seeds=1,
            )
        ]
        assert names == [
            "greedy", "local-search", "local-search[seed=17]",
            "branch-and-bound",
        ]


class TestEngine:
    def test_greedy_always_runs_even_at_zero(self):
        app = random_application(4, seed=11)
        fn = EvaluationCache().objective("period", CommModel.OVERLAP)
        out = portfolio_search(
            app, fn, objective="period", model=CommModel.OVERLAP,
            effort=Effort.HEURISTIC, deadline=0.0,
        )
        assert isinstance(out, PortfolioOutcome)
        assert [r["racer"] for r in out.racers] == ["greedy"]
        assert out.budget_exhausted is True

    def test_empty_roster_rejected(self):
        with pytest.raises(ValueError):
            run_portfolio([])

    def test_bb_racer_improves_or_matches_greedy(self):
        for seed in range(5):
            app = random_application(6, seed=seed + 70, filter_fraction=0.5)
            cache = EvaluationCache()
            fn = cache.objective(
                "period", CommModel.OVERLAP, exactness=Exactness.CERTIFIED
            )
            out = portfolio_search(
                app, fn, objective="period", model=CommModel.OVERLAP,
                effort=Effort.HEURISTIC,
            )
            optimum = solve(
                app, method="branch-and-bound", schedule=False,
                cache=EvaluationCache(), effort="heuristic",
            ).value
            assert out.value == optimum, seed

    def test_process_mode_matches_serial(self):
        app = random_application(5, seed=31, filter_fraction=0.5)
        fn = EvaluationCache().objective(
            "period", CommModel.OVERLAP, exactness=Exactness.CERTIFIED
        )
        serial = portfolio_search(
            app, fn, objective="period", model=CommModel.OVERLAP,
            effort=Effort.HEURISTIC,
        )
        parallel = portfolio_search(
            app, fn, objective="period", model=CommModel.OVERLAP,
            effort=Effort.HEURISTIC, workers=2, deadline=120.0,
        )
        assert parallel.value == serial.value
        assert parallel.budget_exhausted is False
        assert parallel.trajectory[0][2] == "greedy"


class TestIntegration:
    def test_solve_many_deadline_passthrough(self):
        apps = [load_workload(s).application for s in ["fig1", "b3"]]
        batch = solve_many(apps, schedule=False, processes=1, deadline=60.0)
        for result in batch.results:
            assert result.method == "portfolio"
            assert result.deadline == 60.0
            assert result.budget_exhausted is False
        expected = [
            solve(load_workload(s).application, schedule=False,
                  cache=EvaluationCache()).value
            for s in ["fig1", "b3"]
        ]
        assert [r.value for r in batch.results] == expected

    def test_cli_deadline_flag(self, capsys):
        from repro.__main__ import main

        assert main(["solve", "fig1", "--remap", "--deadline", "60",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (result,) = payload["results"]
        assert result["method"] == "portfolio"
        assert result["deadline"] == 60.0
        assert result["budget_exhausted"] is False
        assert result["value"] == "4"

    def test_portfolio_method_without_deadline(self):
        # method="portfolio" with no deadline: bounded B&B, still optimal
        # on small instances, and budget_exhausted reported.
        app = random_application(5, seed=13, filter_fraction=0.5)
        result = solve(app, method="portfolio", schedule=False,
                       cache=EvaluationCache())
        optimum = solve(app, method="branch-and-bound", schedule=False,
                        cache=EvaluationCache(), effort="heuristic")
        assert result.value == optimum.value
        assert result.budget_exhausted is False

    def test_graph_problem_records_deadline_only(self):
        w = load_workload("fig1")
        result = solve(w.graph, deadline=5.0, cache=EvaluationCache())
        assert result.deadline == 5.0
        assert result.budget_exhausted is None and result.trajectory is None
        assert result.method == "schedule"
