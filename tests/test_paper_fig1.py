"""Integration tests: the Section 2.3 example (Figure 1), end to end.

The paper works this example out by hand; every number below is stated in
the text:

* latency 21 (optimal, all models);
* OVERLAP period 4 (optimal);
* OUTORDER period 7 (optimal, equals the lower bound);
* INORDER period 23/3 (optimal — strictly above the lower bound 7).
"""

from fractions import Fraction

import pytest

from repro.core import CommModel, validate
from repro.scheduling import (
    exact_inorder_period,
    inorder_schedule,
    oneport_latency_schedule,
    outorder_schedule,
    is_certified_optimal,
    schedule_period_overlap,
)
from repro.workloads.paper import (
    fig1_example,
    fig1_inorder_period_23_3_operation_list,
    fig1_latency_operation_list,
    fig1_outorder_period7_operation_list,
    fig1_overlap_period4_operation_list,
    fig1_overlap_period5_operation_list,
)


@pytest.fixture(scope="module")
def inst():
    return fig1_example()


class TestPaperOperationLists:
    """The paper's hand-built operation lists pass our validators."""

    def test_latency_ol_valid_all_models(self, inst):
        ol = fig1_latency_operation_list()
        for model in (CommModel.OVERLAP, CommModel.INORDER, CommModel.OUTORDER):
            report = validate(inst.graph, ol, model)
            assert report.ok, (model, report.violations)
        assert ol.latency == 21

    def test_overlap_period5_valid(self, inst):
        ol = fig1_overlap_period5_operation_list()
        assert ol.period == 5
        report = validate(inst.graph, ol, CommModel.OVERLAP)
        assert report.ok, report.violations

    def test_overlap_period4_valid_and_not_5(self, inst):
        ol = fig1_overlap_period4_operation_list()
        assert ol.period == 4
        report = validate(inst.graph, ol, CommModel.OVERLAP)
        assert report.ok, report.violations

    def test_latency_ol_at_period4_is_invalid(self, inst):
        """Shrinking the latency schedule to lambda=4 without moving C4->C5
        creates a conflict (the paper moves that communication to [12,13])."""
        ol = fig1_latency_operation_list().with_period(4)
        report = validate(inst.graph, ol, CommModel.OVERLAP)
        assert not report.ok

    def test_outorder_period7_valid(self, inst):
        ol = fig1_outorder_period7_operation_list()
        assert ol.period == 7
        report = validate(inst.graph, ol, CommModel.OUTORDER)
        assert report.ok, report.violations

    def test_outorder_period7_violates_inorder(self, inst):
        """The period-7 schedule interleaves data sets: INORDER rejects it."""
        ol = fig1_outorder_period7_operation_list()
        report = validate(inst.graph, ol, CommModel.INORDER)
        assert not report.ok

    def test_inorder_23_3_valid(self, inst):
        ol = fig1_inorder_period_23_3_operation_list()
        assert ol.period == Fraction(23, 3)
        report = validate(inst.graph, ol, CommModel.INORDER)
        assert report.ok, report.violations
        # and it is of course OUTORDER-valid as well
        assert validate(inst.graph, ol, CommModel.OUTORDER).ok

    def test_inorder_at_period7_invalid(self, inst):
        """The INORDER lower bound 7 is not achievable (paper Section 2.3)."""
        ol = fig1_inorder_period_23_3_operation_list().with_period(7)
        report = validate(inst.graph, ol, CommModel.INORDER)
        assert not report.ok


class TestSchedulers:
    """Our schedulers recover the paper's optimal values."""

    def test_overlap_scheduler_period4(self, inst):
        plan = schedule_period_overlap(inst.graph)
        assert plan.period == 4
        assert plan.validate().ok, plan.validate().violations

    def test_exact_inorder_is_23_3(self, inst):
        lam, plan = exact_inorder_period(inst.graph)
        assert lam == Fraction(23, 3)
        assert plan.period == Fraction(23, 3)
        assert plan.validate().ok, plan.validate().violations

    def test_inorder_schedule_helper(self, inst):
        plan = inorder_schedule(inst.graph)
        assert plan.period == Fraction(23, 3)
        assert plan.validate().ok

    def test_outorder_scheduler_reaches_lower_bound_7(self, inst):
        plan = outorder_schedule(inst.graph)
        assert plan.period == 7
        assert plan.validate().ok, plan.validate().violations
        assert is_certified_optimal(plan)

    def test_greedy_latency_21(self, inst):
        plan = oneport_latency_schedule(inst.graph)
        assert plan.latency == 21
        assert plan.validate().ok, plan.validate().violations

    def test_latency_matches_lower_bound(self, inst):
        from repro.core import CostModel

        assert CostModel(inst.graph).latency_lower_bound() == 21
