"""CLI error paths: malformed input exits nonzero with one line, no traceback.

Every ``python -m repro`` subcommand funnels user-input failures through
``main()``'s except clause: one ``error: ...`` line on stderr, exit code
2.  A traceback leaking through means a new failure mode slipped past
the net (regression: ``--platform hom:bw=1/0`` used to raise a bare
``ZeroDivisionError``).
"""

import pytest

from repro.__main__ import main


def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.mark.parametrize(
    "argv",
    [
        ["solve", "nope"],
        ["solve", "random:n=bogus"],
        ["solve", "random:n=5,seed=1,zzz=3"],
        ["solve", "fig1", "--platform", "nope"],
        ["solve", "fig1", "--platform", "hom:n=bogus"],
        ["solve", "fig1", "--platform", "hom:bw=1/0"],
        ["solve", "fig1", "--platform", "het:n=4,seed=1,zzz=2"],
        ["solve", "fig1", "--platform", "tree:racks=0"],
        ["solve", "fig1", "--platform", "tree:racks=2,servers=2,up_bw=0"],
        ["solve", "fig1", "--platform", "tree:racks=2,servers=2,rack_bw=-1"],
        ["solve", "fig1", "--platform", "tree:rocks=2"],
        ["solve", "fig1", "--platform", "torus:dims=axb"],
        ["solve", "fig1", "--platform", "torus:dims="],
        ["solve", "fig1", "--platform", "torus:dims=4x0"],
        ["solve", "fig1", "--platform", "torus:dims=3x2,bw=0"],
        ["solve", "fig1", "--platform", "torus:dims=3x2,zzz=1"],
        ["solve", "fig1", "--method", "no-such-solver"],
        ["batch", "fig1", "--platform", "nope"],
        ["compare", "nope"],
        ["concurrent", "fig1+nope", "--platform", "hom:n=3"],
        ["concurrent", "fig1+fig1", "--platform", "nope"],
        ["concurrent", "fig1+fig1", "--platform", "hom:n=3",
         "--targets", "16,8,4"],
        ["concurrent", "fig1+fig1", "--platform", "hom:n=3",
         "--targets", "a0-fig1=16,8"],
        ["profile", "nope"],
    ],
)
def test_malformed_input_is_one_line_error_rc2(argv, capsys):
    code, out, err = run_cli(argv, capsys)
    assert code == 2
    assert err.startswith("error: ")
    assert len(err.strip().splitlines()) == 1
    assert "Traceback" not in err and "Traceback" not in out


def test_zero_denominator_message_names_the_cause(capsys):
    code, _, err = run_cli(["solve", "fig1", "--platform", "hom:bw=1/0"], capsys)
    assert code == 2
    assert "zero denominator" in err


def test_serve_no_stdio_without_tcp_is_an_error(capsys):
    code, _, err = run_cli(["serve", "--no-stdio"], capsys)
    assert code == 2
    assert err.startswith("error: ")
    assert "--tcp" in err


def test_serve_bad_tcp_spec_is_an_error(capsys):
    code, _, err = run_cli(["serve", "--tcp", "nonsense"], capsys)
    assert code == 2
    assert err.startswith("error: ")
    assert "HOST:PORT" in err


TRACE_HEADER = "time,kind,app,workload,rho,servers\n"


@pytest.mark.parametrize(
    "row,needle",
    [
        ("0,explode,a1,fig1,,", "row 2"),           # unknown event kind
        ("0,load,a1,,abc,", "row 2"),               # non-numeric rho
        ("0,load,a1,,-2,", "row 2"),                # non-positive rho
        ("0,admit,a1,fig1,,,extra", "row 2"),       # ragged row (extra column)
        ("0,admit,,fig1,,", "application name"),    # admit without an app
    ],
)
def test_replay_malformed_csv_is_one_line_error_rc2(
    row, needle, tmp_path, capsys
):
    """Satellite regression: a malformed scenario CSV must exit 2 with a
    single row-numbered ``error:`` line — never a traceback (a ragged row
    used to surface as a bare ``TypeError`` from sorting a ``None`` key)."""
    path = tmp_path / "trace.csv"
    path.write_text(TRACE_HEADER + row + "\n")
    code, out, err = run_cli(
        ["replay", str(path), "--platform", "hom:n=4"], capsys
    )
    assert code == 2
    assert err.startswith("error: ")
    assert needle in err
    assert len(err.strip().splitlines()) == 1
    assert "Traceback" not in err and "Traceback" not in out


@pytest.mark.parametrize(
    "argv",
    [
        ["solve", "fig1", "--robust", "pessimal:eps=1/10"],
        ["solve", "fig1", "--robust", "worst_case:zzz=1"],
        ["solve", "fig1", "--robust", "worst_case:eps=2"],
        ["solve", "fig1", "--robust", "quantile:eps=1/10"],
        ["solve", "fig1", "--robust", "worst_case:speed=1/10"],  # no platform
        ["calibrate"],
        ["calibrate", "nope"],
        ["calibrate", "--trace", "/nonexistent/trace.csv"],
    ],
)
def test_robust_and_calibrate_errors_are_one_line_rc2(argv, capsys):
    code, out, err = run_cli(argv, capsys)
    assert code == 2
    assert err.startswith("error: ")
    assert len(err.strip().splitlines()) == 1
    assert "Traceback" not in err and "Traceback" not in out


def test_good_invocation_still_exits_zero(capsys):
    code, out, err = run_cli(["solve", "fig1"], capsys)
    assert code == 0
    assert "workload: fig1" in out
