"""CLI error paths: malformed input exits nonzero with one line, no traceback.

Every ``python -m repro`` subcommand funnels user-input failures through
``main()``'s except clause: one ``error: ...`` line on stderr, exit code
2.  A traceback leaking through means a new failure mode slipped past
the net (regression: ``--platform hom:bw=1/0`` used to raise a bare
``ZeroDivisionError``).
"""

import pytest

from repro.__main__ import main


def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.mark.parametrize(
    "argv",
    [
        ["solve", "nope"],
        ["solve", "random:n=bogus"],
        ["solve", "random:n=5,seed=1,zzz=3"],
        ["solve", "fig1", "--platform", "nope"],
        ["solve", "fig1", "--platform", "hom:n=bogus"],
        ["solve", "fig1", "--platform", "hom:bw=1/0"],
        ["solve", "fig1", "--platform", "het:n=4,seed=1,zzz=2"],
        ["solve", "fig1", "--platform", "tree:racks=0"],
        ["solve", "fig1", "--platform", "tree:racks=2,servers=2,up_bw=0"],
        ["solve", "fig1", "--platform", "tree:racks=2,servers=2,rack_bw=-1"],
        ["solve", "fig1", "--platform", "tree:rocks=2"],
        ["solve", "fig1", "--platform", "torus:dims=axb"],
        ["solve", "fig1", "--platform", "torus:dims="],
        ["solve", "fig1", "--platform", "torus:dims=4x0"],
        ["solve", "fig1", "--platform", "torus:dims=3x2,bw=0"],
        ["solve", "fig1", "--platform", "torus:dims=3x2,zzz=1"],
        ["solve", "fig1", "--method", "no-such-solver"],
        ["batch", "fig1", "--platform", "nope"],
        ["compare", "nope"],
        ["concurrent", "fig1+nope", "--platform", "hom:n=3"],
        ["concurrent", "fig1+fig1", "--platform", "nope"],
        ["concurrent", "fig1+fig1", "--platform", "hom:n=3",
         "--targets", "16,8,4"],
        ["concurrent", "fig1+fig1", "--platform", "hom:n=3",
         "--targets", "a0-fig1=16,8"],
        ["profile", "nope"],
    ],
)
def test_malformed_input_is_one_line_error_rc2(argv, capsys):
    code, out, err = run_cli(argv, capsys)
    assert code == 2
    assert err.startswith("error: ")
    assert len(err.strip().splitlines()) == 1
    assert "Traceback" not in err and "Traceback" not in out


def test_zero_denominator_message_names_the_cause(capsys):
    code, _, err = run_cli(["solve", "fig1", "--platform", "hom:bw=1/0"], capsys)
    assert code == 2
    assert "zero denominator" in err


def test_serve_no_stdio_without_tcp_is_an_error(capsys):
    code, _, err = run_cli(["serve", "--no-stdio"], capsys)
    assert code == 2
    assert err.startswith("error: ")
    assert "--tcp" in err


def test_serve_bad_tcp_spec_is_an_error(capsys):
    code, _, err = run_cli(["serve", "--tcp", "nonsense"], capsys)
    assert code == 2
    assert err.startswith("error: ")
    assert "HOST:PORT" in err


def test_good_invocation_still_exits_zero(capsys):
    code, out, err = run_cli(["solve", "fig1"], capsys)
    assert code == 0
    assert "workload: fig1" in out
