"""Unit tests for the Appendix-A validators (all three models)."""

from fractions import Fraction

import pytest

from repro.core import (
    CommModel,
    ExecutionGraph,
    INPUT,
    InvalidScheduleError,
    OUTPUT,
    OperationList,
    assert_valid,
    comm_op,
    comp_op,
    make_application,
    validate,
)

F = Fraction


@pytest.fixture
def chain2():
    app = make_application([("a", 2, F(1, 2)), ("b", 4, 1)])
    return ExecutionGraph.chain(app, ["a", "b"])


def good_times():
    return {
        comm_op(INPUT, "a"): (F(0), F(1)),
        comp_op("a"): (F(1), F(3)),
        comm_op("a", "b"): (F(3), F(7, 2)),
        comp_op("b"): (F(7, 2), F(11, 2)),
        comm_op("b", OUTPUT): (F(11, 2), F(6)),
    }


class TestCoverage:
    def test_valid_serialized(self, chain2):
        ol = OperationList(good_times(), lam=6)
        for model in CommModel:
            assert validate(chain2, ol, model).ok

    def test_missing_operation(self, chain2):
        times = good_times()
        del times[comp_op("b")]
        ol = OperationList(times, lam=6)
        rep = validate(chain2, ol, CommModel.INORDER)
        assert not rep.ok
        assert any("missing" in v for v in rep.violations)

    def test_unexpected_operation(self, chain2):
        times = good_times()
        times[comm_op("b", "a")] = (F(0), F(1))
        ol = OperationList(times, lam=6)
        rep = validate(chain2, ol, CommModel.INORDER)
        assert any("unexpected" in v for v in rep.violations)

    def test_assert_valid_raises(self, chain2):
        times = good_times()
        del times[comp_op("b")]
        with pytest.raises(InvalidScheduleError):
            assert_valid(chain2, OperationList(times, lam=6), CommModel.INORDER)


class TestDurations:
    def test_wrong_comp_duration(self, chain2):
        times = good_times()
        times[comp_op("a")] = (F(1), F(2))  # Ccomp(a) = 2, not 1
        rep = validate(chain2, OperationList(times, lam=6), CommModel.INORDER)
        assert any("Ccomp" in v for v in rep.violations)

    def test_oneport_comm_must_be_full_rate(self, chain2):
        times = good_times()
        times[comm_op("a", "b")] = (F(3), F(4))  # size 1/2 stretched to 1
        rep = validate(chain2, OperationList(times, lam=6), CommModel.INORDER)
        assert not rep.ok

    def test_overlap_comm_may_stretch(self, chain2):
        times = good_times()
        # stretch the message and move downstream ops later
        times[comm_op("a", "b")] = (F(3), F(4))
        times[comp_op("b")] = (F(4), F(6))
        times[comm_op("b", OUTPUT)] = (F(6), F(13, 2))
        ol = OperationList(times, lam=7)
        assert validate(chain2, ol, CommModel.OVERLAP).ok

    def test_overlap_comm_cannot_beat_bandwidth(self, chain2):
        times = good_times()
        times[comm_op(INPUT, "a")] = (F(0), F(1, 2))  # size 1 in 1/2 time
        times[comp_op("a")] = (F(1, 2), F(5, 2))
        times[comm_op("a", "b")] = (F(5, 2), F(3))
        times[comp_op("b")] = (F(3), F(5))
        times[comm_op("b", OUTPUT)] = (F(5), F(11, 2))
        rep = validate(chain2, OperationList(times, lam=6), CommModel.OVERLAP)
        assert any("ratio" in v for v in rep.violations)


class TestPrecedence:
    def test_comm_after_comp_required(self, chain2):
        times = good_times()
        times[comm_op("a", "b")] = (F(2), F(5, 2))  # before comp(a) ends
        rep = validate(chain2, OperationList(times, lam=6), CommModel.INORDER)
        assert any("before the computation" in v for v in rep.violations)

    def test_comp_after_incomm_required(self, chain2):
        times = good_times()
        times[comp_op("b")] = (F(3), F(5))  # starts before message arrives
        rep = validate(chain2, OperationList(times, lam=6), CommModel.INORDER)
        assert not rep.ok


class TestOnePortExclusion:
    def test_cross_period_conflict_detected(self, chain2):
        # comp(a) lasts 2; with lam = 2 the input message of the next data
        # set would collide with it on server a.
        ol = OperationList(good_times(), lam=2)
        rep = validate(chain2, ol, CommModel.OUTORDER)
        assert any("overlap" in v for v in rep.violations)

    def test_fan_in_same_time_rejected(self):
        app = make_application([("a", 1, 1), ("b", 1, 1), ("c", 1, 1)])
        graph = ExecutionGraph(app, [("a", "c"), ("b", "c")])
        times = {
            comm_op(INPUT, "a"): (F(0), F(1)),
            comm_op(INPUT, "b"): (F(0), F(1)),
            comp_op("a"): (F(1), F(2)),
            comp_op("b"): (F(1), F(2)),
            comm_op("a", "c"): (F(2), F(3)),
            comm_op("b", "c"): (F(2), F(3)),  # both received at once
            comp_op("c"): (F(3), F(4)),
            comm_op("c", OUTPUT): (F(4), F(5)),
        }
        rep = validate(graph, OperationList(times, lam=10), CommModel.OUTORDER)
        assert not rep.ok
        # multi-port accepts it (two incoming ratios of 1... no — sum 2)
        rep_mp = validate(graph, OperationList(times, lam=10), CommModel.OVERLAP)
        assert not rep_mp.ok  # exceeds incoming bandwidth too

    def test_staggered_fan_in_ok_oneport(self):
        app = make_application([("a", 1, 1), ("b", 1, 1), ("c", 1, 1)])
        graph = ExecutionGraph(app, [("a", "c"), ("b", "c")])
        times = {
            comm_op(INPUT, "a"): (F(0), F(1)),
            comm_op(INPUT, "b"): (F(0), F(1)),
            comp_op("a"): (F(1), F(2)),
            comp_op("b"): (F(1), F(2)),
            comm_op("a", "c"): (F(2), F(3)),
            comm_op("b", "c"): (F(3), F(4)),
            comp_op("c"): (F(4), F(5)),
            comm_op("c", OUTPUT): (F(5), F(6)),
        }
        rep = validate(graph, OperationList(times, lam=6), CommModel.OUTORDER)
        assert rep.ok, rep.violations


class TestInorderRule:
    def test_constraint_one_enforced(self, chain2):
        """Sending data set n after receiving data set n+1 violates INORDER
        but not OUTORDER."""
        times = {
            comm_op(INPUT, "a"): (F(0), F(1)),
            comp_op("a"): (F(1), F(3)),
            comm_op("a", "b"): (F(12), F(25, 2)),  # sent 1.5 periods late
            comp_op("b"): (F(25, 2), F(29, 2)),
            comm_op("b", OUTPUT): (F(29, 2), F(15)),
        }
        ol = OperationList(times, lam=8)
        assert validate(chain2, ol, CommModel.OUTORDER).ok
        rep = validate(chain2, ol, CommModel.INORDER)
        assert any("INORDER" in v for v in rep.violations)


class TestOverlapBandwidthSweep:
    def test_full_period_messages_allowed(self):
        """Theorem-1 style schedules: every message stretched to lambda."""
        app = make_application([("a", 1, 1), ("b", 1, 1), ("c", 1, 1)])
        graph = ExecutionGraph(app, [("a", "c"), ("b", "c")])
        T = F(2)  # Cin(c) = 2
        times = {
            comm_op(INPUT, "a"): (F(0), T),
            comm_op(INPUT, "b"): (F(0), T),
            comp_op("a"): (T, T + 1),
            comp_op("b"): (T, T + 1),
            comm_op("a", "c"): (T + 1, T + 1 + T),
            comm_op("b", "c"): (T + 1, T + 1 + T),
            comp_op("c"): (T + 1 + T, T + 2 + T),
            comm_op("c", OUTPUT): (T + 2 + T, T + 2 + 2 * T),
        }
        ol = OperationList(times, lam=T)
        assert validate(graph, ol, CommModel.OVERLAP).ok
