"""Unit and property tests for OperationList and modular interval helpers."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    INPUT,
    OUTPUT,
    OperationList,
    comm_op,
    comp_op,
    is_comm,
    is_comp,
    modular_overlap,
    modular_residue,
    op_servers,
)

F = Fraction


class TestOpHelpers:
    def test_kinds(self):
        assert is_comp(comp_op("a"))
        assert is_comm(comm_op("a", "b"))
        assert not is_comp(comm_op("a", "b"))

    def test_op_servers(self):
        assert op_servers(comp_op("a")) == ("a",)
        assert op_servers(comm_op("a", "b")) == ("a", "b")
        assert op_servers(comm_op(INPUT, "b")) == ("b",)
        assert op_servers(comm_op("a", OUTPUT)) == ("a",)


class TestOperationList:
    def make(self):
        return OperationList(
            {
                comm_op(INPUT, "a"): (0, 1),
                comp_op("a"): (1, 3),
                comm_op("a", OUTPUT): (3, F(7, 2)),
            },
            lam=4,
        )

    def test_accessors(self):
        ol = self.make()
        assert ol.begin(comp_op("a")) == 1
        assert ol.end(comp_op("a")) == 3
        assert ol.duration(comp_op("a")) == 2
        assert len(ol) == 3
        assert comp_op("a") in ol

    def test_period_latency_makespan(self):
        ol = self.make()
        assert ol.period == 4
        assert ol.latency == F(7, 2)
        assert ol.makespan == F(7, 2)

    def test_shifts(self):
        ol = self.make().shifted(2)
        assert ol.begin(comp_op("a")) == 3
        assert ol.begin_n(comp_op("a"), 2) == 3 + 8

    def test_normalised(self):
        ol = self.make().shifted(5).normalised()
        assert ol.begin(comm_op(INPUT, "a")) == 0

    def test_with_period(self):
        assert self.make().with_period(10).period == 10

    def test_with_times(self):
        ol = self.make().with_times({comp_op("a"): (2, 4)})
        assert ol.begin(comp_op("a")) == 2

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            OperationList({comp_op("a"): (3, 1)}, lam=4)

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ValueError):
            OperationList({comp_op("a"): (0, 1)}, lam=0)

    def test_equality(self):
        assert self.make() == self.make()
        assert self.make() != self.make().shifted(1)


class TestModularResidue:
    def test_basic(self):
        assert modular_residue(F(10), F(7)) == 3
        assert modular_residue(F(-1), F(7)) == 6
        assert modular_residue(F(14), F(7)) == 0
        assert modular_residue(F(23, 3), F(23, 3)) == 0

    @given(
        st.fractions(min_value=-100, max_value=100),
        st.fractions(min_value=F(1, 10), max_value=50),
    )
    def test_residue_in_range(self, x, lam):
        r = modular_residue(x, lam)
        assert 0 <= r < lam
        q = (x - r) / lam
        assert q.denominator == 1  # integer multiple


class TestModularOverlap:
    def test_disjoint_same_period(self):
        assert not modular_overlap(F(0), F(1), F(1), F(1), F(4))

    def test_overlap_direct(self):
        assert modular_overlap(F(0), F(2), F(1), F(1), F(4))

    def test_overlap_wraparound(self):
        # op2 at [3, 5) wraps into [0, 1) which hits op1 at [0, 1)
        assert modular_overlap(F(0), F(1), F(3), F(2), F(4))

    def test_wrap_side_only(self):
        # Regression for the AND/OR bug: op1 [4, 5), op2 [2, 6) mod 7:
        # forward gap from op1 to op2 is 5 (no hit) but op2 covers op1.
        assert modular_overlap(F(4), F(1), F(2), F(4), F(7))

    def test_distant_data_sets_same_residue(self):
        assert modular_overlap(F(11), F(1), F(121), F(4), F(7))

    def test_touching_is_fine(self):
        assert not modular_overlap(F(0), F(2), F(2), F(2), F(4))

    def test_zero_duration_never_overlaps(self):
        assert not modular_overlap(F(0), F(0), F(0), F(3), F(4))

    def test_longer_than_period_always_overlaps(self):
        assert modular_overlap(F(0), F(5), F(2), F(1), F(4))

    @given(
        st.fractions(min_value=0, max_value=20),
        st.fractions(min_value=F(1, 4), max_value=3),
        st.fractions(min_value=0, max_value=20),
        st.fractions(min_value=F(1, 4), max_value=3),
        st.fractions(min_value=4, max_value=10),
    )
    def test_symmetry(self, b1, d1, b2, d2, lam):
        assert modular_overlap(b1, d1, b2, d2, lam) == modular_overlap(
            b2, d2, b1, d1, lam
        )

    @given(
        st.fractions(min_value=0, max_value=20),
        st.fractions(min_value=F(1, 4), max_value=3),
        st.fractions(min_value=0, max_value=20),
        st.fractions(min_value=F(1, 4), max_value=3),
        st.fractions(min_value=4, max_value=10),
        st.integers(-3, 3),
    )
    def test_period_shift_invariance(self, b1, d1, b2, d2, lam, k):
        assert modular_overlap(b1, d1, b2 + k * lam, d2, lam) == modular_overlap(
            b1, d1, b2, d2, lam
        )

    @given(
        st.fractions(min_value=0, max_value=12),
        st.fractions(min_value=F(1, 4), max_value=2),
        st.fractions(min_value=0, max_value=12),
        st.fractions(min_value=F(1, 4), max_value=2),
        st.fractions(min_value=4, max_value=8),
    )
    def test_matches_brute_force_expansion(self, b1, d1, b2, d2, lam):
        """Compare against explicitly expanding occurrences over many periods."""
        expected = False
        for n1 in range(-4, 5):
            for n2 in range(-4, 5):
                s1, e1 = b1 + n1 * lam, b1 + d1 + n1 * lam
                s2, e2 = b2 + n2 * lam, b2 + d2 + n2 * lam
                if s1 < e2 and s2 < e1:
                    expected = True
        assert modular_overlap(b1, d1, b2, d2, lam) == expected
