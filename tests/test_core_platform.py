"""Unit tests for the platform layer: Server/Link/Platform/Mapping + CostModel."""

from fractions import Fraction

import pytest

from repro import (
    CostModel,
    ExecutionGraph,
    Link,
    Mapping,
    Platform,
    Server,
    make_application,
)
from repro.core import INPUT, OUTPUT, CommModel, platform_fingerprint
from repro.workloads.paper import b1_counterexample, b2_latency_ports, fig1_example

F = Fraction


# ---------------------------------------------------------------------------
# Platform construction and lookups
# ---------------------------------------------------------------------------

def test_server_and_link_validation():
    with pytest.raises(ValueError):
        Server("S1", 0)
    with pytest.raises(ValueError):
        Server("", 1)
    with pytest.raises(ValueError):
        Link("S1", "S1", 1)
    with pytest.raises(ValueError):
        Link("S1", "S2", F(-1, 2))


def test_platform_requires_unique_known_servers():
    with pytest.raises(ValueError):
        Platform([Server("S1"), Server("S1")])
    with pytest.raises(KeyError):
        Platform([Server("S1")], [Link("S1", "S9", 1)])
    with pytest.raises(ValueError):
        Platform([])


def test_bandwidth_lookup_symmetric_with_directed_override():
    p = Platform(
        [Server("S1"), Server("S2"), Server("S3")],
        [Link("S1", "S2", F(1, 2)), Link("S2", "S1", F(1, 4))],
        default_bandwidth=2,
    )
    # explicit directions win; unrelated pairs fall back to the default
    assert p.bandwidth("S1", "S2") == F(1, 2)
    assert p.bandwidth("S2", "S1") == F(1, 4)
    assert p.bandwidth("S1", "S3") == F(2)
    # single-direction links apply symmetrically
    q = Platform([Server("S1"), Server("S2")], [Link("S1", "S2", F(1, 3))])
    assert q.bandwidth("S2", "S1") == F(1, 3)
    with pytest.raises(KeyError):
        p.bandwidth("S1", "S9")


def test_io_links_address_the_outside_world():
    p = Platform(
        [Server("S1")],
        [Link(INPUT, "S1", F(1, 2)), Link("S1", OUTPUT, F(1, 4))],
    )
    assert p.bandwidth(INPUT, "S1") == F(1, 2)
    assert p.bandwidth("S1", OUTPUT) == F(1, 4)


def test_homogeneous_and_unit_flags():
    assert Platform.homogeneous(3).is_unit
    assert Platform.homogeneous(3).is_homogeneous
    uniform_fast = Platform.homogeneous(3, speed=2)
    assert uniform_fast.is_homogeneous and not uniform_fast.is_unit
    het = Platform.of(speeds=[1, 2])
    assert not het.is_homogeneous and not het.is_unit


def test_fingerprints_separate_het_from_unit():
    unit_a = Platform.homogeneous(3)
    unit_b = Platform.homogeneous(7)
    het = Platform.of(speeds=[1, 2, 1])
    m = Mapping({"A": "S1"})
    assert platform_fingerprint(None) == platform_fingerprint(unit_a)
    assert unit_a.fingerprint() == unit_b.fingerprint() == "unit"
    assert het.fingerprint() != "unit"
    assert platform_fingerprint(het, m) != platform_fingerprint(het, None)
    assert platform_fingerprint(het, m) != platform_fingerprint(None, m)


# ---------------------------------------------------------------------------
# Mapping
# ---------------------------------------------------------------------------

def test_mapping_injective_and_moves():
    with pytest.raises(ValueError):
        Mapping({"A": "S1", "B": "S1"})
    m = Mapping({"A": "S1", "B": "S2"})
    assert m.server("A") == "S1"
    assert m.swapped("A", "B").server("A") == "S2"
    assert m.reassigned("A", "S3").server("A") == "S3"
    with pytest.raises(ValueError):
        m.reassigned("A", "S2")  # B already lives there
    with pytest.raises(KeyError):
        m.server("C")


def test_mapping_default_and_validate():
    p = Platform.homogeneous(3)
    m = Mapping.default(("X", "Y"), p)
    assert m.items() == (("X", "S1"), ("Y", "S2"))
    with pytest.raises(ValueError):
        Mapping.default(("A", "B", "C", "D"), p)
    with pytest.raises(ValueError):
        m.validate_on(("X", "Y", "Z"), p)
    with pytest.raises(ValueError):
        Mapping({"X": "S9"}).validate_on(("X",), p)


# ---------------------------------------------------------------------------
# CostModel on platforms
# ---------------------------------------------------------------------------

def _chain2():
    app = make_application([("A", 2, F(1, 2)), ("B", 4, 1)])
    return ExecutionGraph.chain(app, ["A", "B"])


def test_unit_platform_reproduces_normalised_costs_exactly():
    for maker in (fig1_example, b2_latency_ports, b1_counterexample):
        graph = maker().graph
        plain = CostModel(graph)
        unit = CostModel(graph, Platform.homogeneous(len(graph.nodes)))
        for node in graph.nodes:
            assert plain.ccomp(node) == unit.ccomp(node)
            assert plain.cin(node) == unit.cin(node)
            assert plain.cout(node) == unit.cout(node)
        for model in CommModel:
            assert plain.period_lower_bound(model) == unit.period_lower_bound(model)
        assert plain.latency_lower_bound() == unit.latency_lower_bound()


def test_speed_scales_ccomp_and_bandwidth_scales_comm():
    graph = _chain2()
    platform = Platform.of(
        speeds=[2, F(1, 2)],
        links={("S1", "S2"): F(1, 4), (INPUT, "S1"): F(1, 2)},
    )
    costs = CostModel(graph, platform)  # default mapping: A->S1, B->S2
    assert costs.ccomp("A") == F(1)               # work 2 on the speed-2 server
    # B processes size 1/2 at cost 4 => work 2, on speed 1/2 => 4
    assert costs.ccomp("B") == F(4)
    # input message of size 1 over the 1/2-bandwidth input link
    assert costs.cin("A") == F(2)
    # A->B message of size 1/2 over the 1/4 link
    assert costs.comm_time("A", "B") == F(2)
    assert costs.cout("A") == F(2) and costs.cin("B") == F(2)
    # output message of B: size 1/2 at default bandwidth 1
    assert costs.cout("B") == F(1, 2)
    # message *sizes* stay platform-independent
    assert costs.message_size("A", "B") == F(1, 2)


def test_mapping_changes_costs():
    graph = _chain2()
    platform = Platform.of(speeds=[1, 4])
    swapped = Mapping({"A": "S2", "B": "S1"})
    default = CostModel(graph, platform)
    other = CostModel(graph, platform, swapped)
    assert default.ccomp("B") == F(1, 2)  # work 2 on the speed-4 server
    assert other.ccomp("B") == F(2)       # same work on the speed-1 server
    assert other.ccomp("A") == F(1, 2)    # A's work 2 moved to the fast server


def test_costmodel_rejects_bad_mapping_or_small_platform():
    graph = _chain2()
    with pytest.raises(ValueError):
        CostModel(graph, Platform.homogeneous(1))
    with pytest.raises(ValueError):
        CostModel(graph, Platform.homogeneous(2), Mapping({"A": "S1"}))
