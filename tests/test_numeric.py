"""The two-tier numeric engine: float-kernel parity and exact certification.

Four promises under test:

1. **Kernel parity** — every :class:`~repro.core.FloatCosts` quantity
   (``Cin``/``Ccomp``/``Cout``, per-server aggregates, the period and
   latency bounds) agrees with the exact :class:`~repro.core.CostModel`
   within 1e-9 relative, across a sweep of >= 200 seeded instances on
   unit and heterogeneous platforms, injective and shared mappings; the
   ``Float*`` incremental twins agree with their Fraction counterparts
   move by move.
2. **Certified search = exact search, bit for bit** — branch and bound,
   the exhaustive scan, and the placement searches return byte-identical
   values under ``exactness="certified"`` and ``exactness="exact"``.
3. **The epsilon guard survives adversarial near-ties** — instances whose
   competing candidates differ by ~2^-60 relative (far below float
   resolution) still certify the true optimum, including optima whose
   exact value a float cannot even represent.
4. **Cache/memo isolation** — a ``fast`` (float-image) value is never
   served to a certified or exact caller, in the evaluation cache *and*
   in the placement memo.
"""

import random
from fractions import Fraction

import pytest

from repro.core import (
    CERT_EPS,
    CommModel,
    CostModel,
    Exactness,
    ExecutionGraph,
    FloatCosts,
    Mapping,
    Platform,
    certified_threshold,
)
from repro.optimize import (
    CertifiedForestPeriod,
    FloatForestPeriod,
    FloatMappingCosts,
    FloatSharedCosts,
    IncrementalForestPeriod,
    IncrementalMappingCosts,
    IncrementalSharedCosts,
    bb_minperiod,
    clear_placement_memo,
    local_search_forest,
    make_period_objective,
    optimize_mapping,
    optimize_shared_mapping,
)
from repro.optimize.evaluation import (
    Effort,
    fast_latency_value,
    fast_period_value,
)
from repro.planner import EvaluationCache, solve
from repro.workloads.generators import random_application

F = Fraction

REL_TOL = 1e-9

MODELS = (CommModel.OVERLAP, CommModel.INORDER)


def _close(fast, exact):
    exact_f = float(exact)
    if exact_f == 0.0:
        return abs(fast) <= REL_TOL
    return abs(fast - exact_f) <= REL_TOL * abs(exact_f)


def _assert_kernel_matches(graph, platform, mapping):
    exact = CostModel(graph, platform, mapping)
    fast = FloatCosts(graph, platform, mapping)
    for node in graph.nodes:
        assert _close(fast.cin(node), exact.cin(node)), node
        assert _close(fast.ccomp(node), exact.ccomp(node)), node
        assert _close(fast.cout(node), exact.cout(node)), node
        assert _close(
            fast.ancestor_selectivity(node), exact.ancestor_selectivity(node)
        )
        assert _close(fast.outsize(node), exact.outsize(node))
    for model in MODELS:
        assert _close(
            fast.period_lower_bound(model), exact.period_lower_bound(model)
        )
    assert _close(fast.latency_lower_bound(), exact.latency_lower_bound())
    if mapping is not None and not mapping.is_injective:
        for server in exact.used_servers():
            assert _close(fast.server_cin(server), exact.server_cin(server))
            assert _close(fast.server_ccomp(server), exact.server_ccomp(server))
            assert _close(fast.server_cout(server), exact.server_cout(server))
            for model in MODELS:
                assert _close(
                    fast.server_cexec(server, model),
                    exact.server_cexec(server, model),
                )


class TestFloatKernelParity:
    """FloatCosts vs CostModel over >= 200 seeded instances."""

    def test_unit_platform_sweep(self, het_instance):
        # 80 unit-platform instances (random DAG shapes via het factory's
        # graph, platform dropped).
        for seed in range(80):
            graph, _, _ = het_instance(seed)
            _assert_kernel_matches(graph, None, None)

    def test_heterogeneous_injective_sweep(self, het_instance):
        for seed in range(80, 160):
            graph, platform, mapping = het_instance(seed)
            _assert_kernel_matches(graph, platform, mapping)

    def test_shared_mapping_sweep(self, multi_instance):
        # Shared (non-injective) mappings over combined multi-app graphs.
        for seed in range(60):
            multi, platform, mapping = multi_instance(seed)
            _assert_kernel_matches(multi.combined_graph, platform, mapping)

    def test_weighted_shared_aggregation(self, multi_instance):
        # FloatCosts(weights=...) mirrors the weighted utilisation value
        # of IncrementalSharedCosts (the concurrent --targets objective).
        for seed in range(10):
            multi, platform, mapping = multi_instance(seed)
            graph = multi.combined_graph
            weights = {
                svc: F(1, 2 + (i % 3)) for i, svc in enumerate(graph.nodes)
            }
            exact = IncrementalSharedCosts(
                graph, platform, mapping, weights=weights
            ).value()
            fast = FloatCosts(
                graph, platform, mapping, weights=weights
            ).period_lower_bound(CommModel.OVERLAP)
            assert _close(fast, exact)

    def test_unit_shared_mapping(self):
        # Co-location zeroes intra-server edges even on the unit platform.
        app = random_application(5, seed=7, filter_fraction=0.5)
        graph = ExecutionGraph.chain(app, list(app.names))
        platform = Platform.homogeneous(3)
        mapping = Mapping.shared(
            dict(zip(app.names, ["S1", "S1", "S2", "S2", "S3"]))
        )
        _assert_kernel_matches(graph, platform, mapping)

    def test_fast_value_helpers_match_kernel(self, het_instance):
        graph, platform, mapping = het_instance(3)
        exact = CostModel(graph, platform, mapping)
        for model in MODELS:
            fast = fast_period_value(
                graph, model, Effort.BOUND, platform, mapping
            )
            assert fast is not None
            assert _close(fast, exact.period_lower_bound(model))
        fast = fast_latency_value(graph, Effort.BOUND, platform, mapping)
        if graph.is_forest:
            assert fast is None  # Algorithm-1 territory: no float shortcut
        else:
            assert fast is not None
            assert _close(fast, exact.latency_lower_bound())

    def test_no_kernel_for_free_placement(self, het_instance):
        graph, platform, _ = het_instance(11)
        assert fast_period_value(
            graph, CommModel.OVERLAP, Effort.HEURISTIC, platform, None
        ) is None


class TestFloatTwinParity:
    """Float incremental twins vs their exact counterparts, move by move."""

    def test_forest_twin_sweep(self, forest_graph):
        rng = random.Random(42)
        checked = 0
        for seed in range(40):
            app = random_application(
                rng.randint(2, 7), seed=seed, filter_fraction=0.6
            )
            graph = forest_graph(app, rng)
            exact = IncrementalForestPeriod(graph, model=CommModel.OVERLAP)
            fast = FloatForestPeriod(graph, model=CommModel.OVERLAP)
            assert _close(fast.value(), exact.value())
            names = list(app.names)
            for _ in range(6):
                node = rng.choice(names)
                parent = rng.choice([None] + [p for p in names if p != node])
                ev, fv = (
                    exact.score_reparent(node, parent),
                    fast.score_reparent(node, parent),
                )
                assert (ev is None) == (fv is None)
                if ev is None:
                    continue
                assert _close(fv, ev)
                checked += 1
                if checked % 3 == 0:
                    exact.apply_reparent(node, parent)
                    fast.apply_reparent(node, parent)
                    assert _close(fast.value(), exact.value())
        assert checked >= 40

    def test_placement_twin_sweep(self, multi_instance):
        rng = random.Random(7)
        for seed in range(25):
            multi, platform, mapping = multi_instance(seed)
            graph = multi.combined_graph
            exact = IncrementalSharedCosts(graph, platform, mapping)
            fast = FloatSharedCosts(graph, platform, mapping)
            assert _close(fast.value(), exact.value())
            services = sorted(graph.nodes)
            servers = list(platform.names)
            for _ in range(6):
                svc = rng.choice(services)
                srv = rng.choice(servers)
                assert _close(
                    fast.score_reassign(svc, srv), exact.score_reassign(svc, srv)
                )
                a, b = rng.sample(services, 2) if len(services) > 1 else (svc, svc)
                if a != b:
                    assert _close(fast.score_swap(a, b), exact.score_swap(a, b))
                exact.apply_reassign(svc, srv)
                fast.apply_reassign(svc, srv)
                assert _close(fast.value(), exact.value())

    def test_injective_twin(self, het_instance):
        graph, platform, mapping = het_instance(21)
        exact = IncrementalMappingCosts(graph, platform, mapping)
        fast = FloatMappingCosts(graph, platform, mapping)
        assert _close(fast.value(), exact.value())

    def test_certified_wrapper_matches_exact_local_search(self):
        # The certified wrapper must reproduce the exact local-search
        # trajectory bit for bit (same final value AND same final forest).
        for seed in range(20):
            app = random_application(6, seed=seed, filter_fraction=0.6)
            start = ExecutionGraph.empty(app)
            objective = make_period_objective(CommModel.OVERLAP)
            exact_val, exact_graph = local_search_forest(
                start, objective,
                delta=IncrementalForestPeriod(start, model=CommModel.OVERLAP),
            )
            cert_val, cert_graph = local_search_forest(
                start, objective,
                delta=CertifiedForestPeriod(start, model=CommModel.OVERLAP),
            )
            assert cert_val == exact_val
            assert cert_graph.edges == exact_graph.edges


class TestCertifiedSearchBitForBit:
    """Certified searches return byte-identical results to exact ones."""

    #: The seeded catalog: (n, seed) pairs spanning the B&B-feasible range.
    CATALOG = [(n, seed) for n in (4, 5, 6, 7) for seed in range(6)]

    def test_bb_catalog(self):
        for n, seed in self.CATALOG:
            app = random_application(n, seed=seed, filter_fraction=0.6)
            objective = make_period_objective(CommModel.OVERLAP)
            exact_val, _, exact_stats = bb_minperiod(app, objective)
            cert_val, _, cert_stats = bb_minperiod(
                app, objective, exactness=Exactness.CERTIFIED
            )
            assert cert_val == exact_val, (n, seed)
            # The near-tie band restores the exact tier's prune set, so
            # the search effort matches too (a regression canary for the
            # certification protocol, not a user-facing promise).
            assert cert_stats.expanded == exact_stats.expanded, (n, seed)
            assert cert_stats.evaluated == exact_stats.evaluated, (n, seed)

    def test_solve_catalog_through_planner(self):
        for n, seed in [(5, 1), (6, 3), (7, 2)]:
            app = random_application(n, seed=seed, filter_fraction=0.5)
            exact = solve(app, method="branch-and-bound", schedule=False,
                          cache=EvaluationCache(), exactness="exact")
            cert = solve(app, method="branch-and-bound", schedule=False,
                         cache=EvaluationCache(), exactness="certified")
            assert cert.value == exact.value
            assert cert.stats.extras["certified"] is True

    def test_bb_latency_certified(self):
        for n, seed in [(4, 1), (5, 3)]:
            app = random_application(n, seed=seed, filter_fraction=0.5)
            exact = solve(app, objective="latency", method="branch-and-bound",
                          schedule=False, cache=EvaluationCache(),
                          exactness="exact")
            cert = solve(app, objective="latency", method="branch-and-bound",
                         schedule=False, cache=EvaluationCache(),
                         exactness="certified")
            assert cert.value == exact.value, (n, seed)

    def test_exhaustive_latency_certified(self):
        # DAG enumeration mixes forests (no float kernel: per-graph None)
        # with general DAGs — the mixed-space path of the certified scan.
        app = random_application(4, seed=5, filter_fraction=0.5)
        exact = solve(app, objective="latency", method="exhaustive",
                      schedule=False, cache=EvaluationCache(),
                      effort="bound", exactness="exact")
        cert = solve(app, objective="latency", method="exhaustive",
                     schedule=False, cache=EvaluationCache(),
                     effort="bound", exactness="certified")
        assert cert.value == exact.value
        assert cert.graph.edges == exact.graph.edges

    def test_exhaustive_scan_certified(self):
        for seed in range(6):
            app = random_application(5, seed=seed, filter_fraction=0.6)
            exact = solve(app, method="exhaustive", schedule=False,
                          cache=EvaluationCache(), exactness="exact")
            cert = solve(app, method="exhaustive", schedule=False,
                         cache=EvaluationCache(), exactness="certified")
            assert cert.value == exact.value
            assert cert.graph.edges == exact.graph.edges  # same tie-breaks

    def test_placement_search_certified(self, het_instance):
        for seed in (31, 32, 33):
            graph, platform, _ = het_instance(seed, spare_servers=2)
            clear_placement_memo()
            exact = optimize_mapping(
                graph, "period", CommModel.OVERLAP, Effort.HEURISTIC,
                platform, exactness=Exactness.EXACT,
            )
            clear_placement_memo()
            cert = optimize_mapping(
                graph, "period", CommModel.OVERLAP, Effort.HEURISTIC,
                platform, exactness=Exactness.CERTIFIED,
            )
            assert cert[0] == exact[0]
            assert cert[1].items() == exact[1].items()

    def test_shared_placement_certified(self, multi_instance):
        for seed in (3, 8, 15):
            multi, platform, _ = multi_instance(seed)
            graph = multi.combined_graph
            clear_placement_memo()
            exact = optimize_shared_mapping(
                graph, CommModel.OVERLAP, platform, exactness=Exactness.EXACT
            )
            clear_placement_memo()
            cert = optimize_shared_mapping(
                graph, CommModel.OVERLAP, platform,
                exactness=Exactness.CERTIFIED,
            )
            clear_placement_memo()
            assert cert[0] == exact[0]
            assert cert[1].items() == exact[1].items()


class TestAdversarialNearTies:
    """The epsilon guard never lets float resolution decide a near-tie."""

    #: Far below double resolution (2^-52) and the certification band.
    TINY = F(1, 2 ** 60)

    def test_bb_optimum_with_unrepresentable_value(self):
        # The optimum 2 + 2^-61 rounds to 2.0 in float; certified B&B must
        # still return the exact Fraction, not the float image.
        app_rows = [("A", 4 + self.TINY, 1), ("F", "1/4", "1/2")]
        from repro import make_application

        app = make_application(app_rows)
        expected = (F(4) + self.TINY) / 2  # F filters A's load: ccomp halves
        for exactness in ("exact", "certified"):
            result = solve(app, method="branch-and-bound", schedule=False,
                           cache=EvaluationCache(), exactness=exactness)
            assert result.value == expected, exactness
        assert float(expected) == 2.0  # the tie really is invisible to floats

    def test_bb_near_tie_between_forests(self):
        # Candidate shapes tie within 2^-58 relative — a dead tie on the
        # float tier; the exact arbitration inside the band must land on
        # the true optimum 2 + 2^-59 (F filtering both heavy services),
        # whose tiny component no float comparison can see.
        from repro import make_application

        app = make_application([
            ("A", 4, 1),
            ("B", 4 + 4 * self.TINY, 1),
            ("F", "1/4", "1/2"),
        ])
        exact = solve(app, method="branch-and-bound", schedule=False,
                      cache=EvaluationCache(), exactness="exact")
        cert = solve(app, method="branch-and-bound", schedule=False,
                     cache=EvaluationCache(), exactness="certified")
        assert cert.value == exact.value
        assert cert.value == F(2) + 2 * self.TINY  # B's halved load rules
        assert float(cert.value) == 2.0  # invisible to the float tier

    def test_overflow_degrades_to_exact_tier(self):
        # Quantities beyond float range crash float() — the certified
        # default must degrade to the exact tier, not crash, and agree
        # with exactness="exact" bit for bit.
        from repro import make_application

        app = make_application([
            ("A", F(10) ** 400, "1/2"), ("B", 8, 1),
        ])
        exact = solve(app, method="branch-and-bound", schedule=False,
                      cache=EvaluationCache(), exactness="exact")
        for exactness in (None, "certified", "fast"):
            result = solve(app, method="branch-and-bound", schedule=False,
                           cache=EvaluationCache(), exactness=exactness)
            assert result.value == exact.value, exactness
        # The kernel factories answer None instead of raising, too.
        graph = exact.graph
        assert fast_period_value(graph, CommModel.OVERLAP) is None
        # ... and the exhaustive scan's certified gate degrades as well.
        for exactness in ("exact", "certified"):
            scanned = solve(app, method="exhaustive", schedule=False,
                            cache=EvaluationCache(), exactness=exactness)
            assert scanned.value == exact.value, exactness

    def test_certified_threshold_is_conservative(self):
        value = 3.0
        cut = certified_threshold(value)
        assert cut > value
        assert cut == value * (1.0 + CERT_EPS)

    def test_exhaustive_scan_near_tie(self):
        from repro import make_application

        app = make_application([
            ("A", 4, 1),
            ("B", 4 + 4 * self.TINY, 1),
            ("F", "1/4", "1/2"),
        ])
        exact = solve(app, method="exhaustive", schedule=False,
                      cache=EvaluationCache(), exactness="exact")
        cert = solve(app, method="exhaustive", schedule=False,
                     cache=EvaluationCache(), exactness="certified")
        assert cert.value == exact.value
        assert cert.graph.edges == exact.graph.edges


class TestExactnessIsolation:
    """Fast float-image values never leak into exact/certified callers."""

    def _graph_with_thirds(self):
        # Bandwidth 3 makes the exact value non-dyadic (denominator 3), so
        # a float image provably differs from the exact Fraction.
        from repro import make_application

        app = make_application([("A", 1, 1), ("B", 2, 1)])
        graph = ExecutionGraph.chain(app, ["A", "B"])
        platform = Platform.of(speeds=[1, 1], default_bandwidth=3)
        mapping = Mapping({"A": "S1", "B": "S2"})
        return graph, platform, mapping

    def test_evaluation_cache_keeps_tiers_apart(self):
        graph, platform, mapping = self._graph_with_thirds()
        cache = EvaluationCache()
        fast_obj = cache.objective(
            "period", CommModel.INORDER, Effort.BOUND, platform, mapping,
            Exactness.FAST,
        )
        exact_obj = cache.objective(
            "period", CommModel.INORDER, Effort.BOUND, platform, mapping,
            Exactness.EXACT,
        )
        fast_value = fast_obj(graph)
        exact_value = exact_obj(graph)
        assert exact_value == CostModel(graph, platform, mapping).period_lower_bound(
            CommModel.INORDER
        )
        assert exact_value.denominator % 3 == 0  # genuinely non-dyadic
        assert fast_value != exact_value  # the float image really differs
        # Both entries live side by side; re-queries stay in their tier.
        assert fast_obj(graph) == fast_value
        assert exact_obj(graph) == exact_value

    def test_certified_shares_the_exact_slot(self):
        graph, platform, mapping = self._graph_with_thirds()
        cache = EvaluationCache()
        exact_obj = cache.objective(
            "period", CommModel.INORDER, Effort.BOUND, platform, mapping,
            Exactness.EXACT,
        )
        cert_obj = cache.objective(
            "period", CommModel.INORDER, Effort.BOUND, platform, mapping,
            Exactness.CERTIFIED,
        )
        value = exact_obj(graph)
        assert cert_obj(graph) == value
        assert cert_obj.hits == 1 and cert_obj.misses == 0  # shared slot

    def test_placement_memo_keeps_tiers_apart(self):
        graph, platform, _ = self._graph_with_thirds()
        clear_placement_memo()
        fast = optimize_mapping(
            graph, "period", CommModel.INORDER, Effort.BOUND, platform,
            exactness=Exactness.FAST,
        )
        certified = optimize_mapping(
            graph, "period", CommModel.INORDER, Effort.BOUND, platform,
            exactness=Exactness.CERTIFIED,
        )
        exact = optimize_mapping(
            graph, "period", CommModel.INORDER, Effort.BOUND, platform,
            exactness=Exactness.EXACT,
        )
        clear_placement_memo()
        assert certified[0] == exact[0]  # certified == exact, bit for bit
        assert fast[0] != exact[0]       # the fast image differs ...
        assert _close(float(fast[0]), exact[0])  # ... only by float error

    def test_fast_solve_reports_uncertified(self):
        app = random_application(5, seed=2, filter_fraction=0.5)
        result = solve(app, method="branch-and-bound", schedule=False,
                       cache=EvaluationCache(), exactness="fast")
        assert result.stats.extras["certified"] is False
        assert result.stats.extras["exactness"] == "fast"
        exact = solve(app, method="branch-and-bound", schedule=False,
                      cache=EvaluationCache(), exactness="exact")
        # The fast tier still lands on the optimum here (dyadic instance).
        assert _close(float(result.value), exact.value)


class TestExactnessCoercion:
    def test_coerce(self):
        assert Exactness.coerce(None) is Exactness.CERTIFIED
        assert Exactness.coerce("exact") is Exactness.EXACT
        assert Exactness.coerce("FAST") is Exactness.FAST
        assert Exactness.coerce(Exactness.CERTIFIED) is Exactness.CERTIFIED
        with pytest.raises(ValueError, match="unknown exactness"):
            Exactness.coerce("approximate")

    def test_uses_float(self):
        assert not Exactness.EXACT.uses_float
        assert Exactness.CERTIFIED.uses_float
        assert Exactness.FAST.uses_float

    def test_cli_exposes_the_knob(self, capsys):
        from repro.__main__ import main

        assert main([
            "solve", "fig1", "--exactness", "certified", "--no-schedule",
        ]) == 0
        out = capsys.readouterr().out
        assert "4" in out

    def test_cli_profile_smoke(self, capsys):
        from repro.__main__ import main

        assert main([
            "profile", "fig1", "--top", "5", "--no-schedule",
        ]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out and "value 4" in out
