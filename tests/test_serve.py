"""The planner daemon: protocol, coalescing, batching, caches, transports.

Most tests drive a :class:`~repro.serve.PlannerServer` in-process (one
event loop, no subprocess) — that is where the coalescing/batching
invariants are assertable exactly.  The ``smoke`` tests at the bottom
spawn the real ``python -m repro serve`` subprocess and run the
solve/stats/shutdown round trip over stdio and TCP; ``make serve-smoke``
runs just those.
"""

import asyncio
import json

import pytest

from repro.serve import (
    PlannerServer,
    ProtocolError,
    ServeConfig,
    StdioServeClient,
    TcpServeClient,
    encode_response,
    parse_request,
    resolve_solve,
)


def run(coro):
    return asyncio.run(coro)


async def _with_server(body, config=None):
    server = PlannerServer(config or ServeConfig(batch_window=0.001))
    try:
        return await body(server)
    finally:
        await server.aclose()


# ---------------------------------------------------------------- protocol


def test_parse_request_roundtrip():
    request = parse_request('{"id": 7, "op": "solve", "workload": "fig1"}')
    assert request.op == "solve" and request.id == 7
    assert request.params == {"workload": "fig1"}


@pytest.mark.parametrize(
    "line",
    [
        "not json at all",
        '["a", "list"]',
        '{"op": "frobnicate"}',
        '{"id": 1}',
    ],
)
def test_parse_request_rejects_malformed_lines(line):
    with pytest.raises(ProtocolError):
        parse_request(line)


def test_resolve_solve_rejects_unknown_params():
    with pytest.raises(ProtocolError, match="bogus"):
        resolve_solve({"workload": "fig1", "bogus": 1})


def test_resolve_solve_requires_workload():
    with pytest.raises(ProtocolError, match="workload"):
        resolve_solve({})


def test_resolve_solve_validates_deadline():
    with pytest.raises(ProtocolError, match="deadline"):
        resolve_solve({"workload": "fig1", "deadline": "soon"})
    with pytest.raises(ProtocolError, match="deadline"):
        resolve_solve({"workload": "fig1", "deadline": -1})


def test_solve_keys_discriminate():
    base = resolve_solve({"workload": "fig1"})
    same = resolve_solve({"workload": "fig1"})
    assert base.key == same.key
    assert resolve_solve({"workload": "fig1", "platform": "het4"}).key != base.key
    assert resolve_solve({"workload": "fig1", "exactness": "exact"}).key != base.key
    assert resolve_solve({"workload": "fig1", "exactness": "fast"}).key != base.key
    assert resolve_solve({"workload": "fig1", "objective": "latency"}).key != base.key
    assert resolve_solve({"workload": "fig1", "deadline": 1.0}).key != base.key
    # all three exactness tiers are mutually distinct at the request level
    keys = {
        resolve_solve({"workload": "fig1", "exactness": tier}).key
        for tier in ("exact", "certified", "fast")
    }
    assert len(keys) == 3


def test_encode_response_is_one_line():
    line = encode_response({"id": 1, "ok": True, "result": {"value": "4"}})
    assert "\n" not in line
    assert json.loads(line)["ok"] is True


# ------------------------------------------------------------ basic serving


def test_ping_stats_clear():
    async def body(server):
        assert (await server.handle_request({"op": "ping", "id": 1}))["result"] == "pong"
        stats = (await server.handle_request({"op": "stats", "id": 2}))["result"]
        assert stats["server"]["requests"] == 2
        assert "evaluation_cache" in stats and "result_cache" in stats
        cleared = (await server.handle_request({"op": "clear_cache", "id": 3}))["result"]
        assert cleared == {"evaluation_entries": 0, "result_entries": 0}

    run(_with_server(body))


def test_solve_returns_plan_result_payload():
    async def body(server):
        response = await server.handle_request(
            {"op": "solve", "id": 1, "workload": "fig1"}
        )
        assert response["ok"] and response["served"] == "solve"
        assert response["result"]["value"] == "4"
        assert response["result"]["objective"] == "period"
        assert response["wall_ms"] >= 0

    run(_with_server(body))


def test_malformed_requests_become_error_responses():
    async def body(server):
        bad_op = await server.handle_request({"op": "nope", "id": 1})
        assert bad_op["ok"] is False and "unknown op" in bad_op["error"]
        bad_spec = await server.handle_request(
            {"op": "solve", "id": 2, "workload": "nope:zzz"}
        )
        assert bad_spec["ok"] is False and bad_spec["id"] == 2
        bad_platform = await server.handle_request(
            {"op": "solve", "id": 3, "workload": "fig1", "platform": "hom:bw=1/0"}
        )
        assert bad_platform["ok"] is False
        assert server.errors == 3
        # the daemon stays serviceable after errors
        assert (await server.handle_request({"op": "ping", "id": 4}))["ok"]

    run(_with_server(body))


# ---------------------------------------------------------------- coalescing


def test_identical_concurrent_requests_cost_one_solve():
    async def body(server):
        n = 8
        responses = await asyncio.gather(*[
            server.handle_request(
                {"op": "solve", "id": i, "workload": "random:n=6,seed=3"}
            )
            for i in range(n)
        ])
        served = sorted(r["served"] for r in responses)
        assert served.count("solve") == 1
        assert served.count("coalesced") == n - 1
        assert server.solves == 1
        assert server.coalescer.coalesced == n - 1
        # everyone got the same answer
        values = {r["result"]["value"] for r in responses}
        assert len(values) == 1

    run(_with_server(body))


def test_distinct_platforms_never_coalesce():
    async def body(server):
        responses = await asyncio.gather(
            server.handle_request({"op": "solve", "id": 1, "workload": "fig1"}),
            server.handle_request(
                {"op": "solve", "id": 2, "workload": "fig1", "platform": "het4"}
            ),
            server.handle_request(
                {"op": "solve", "id": 3, "workload": "fig1",
                 "platform": "het:n=3,seed=1"}
            ),
        )
        assert all(r["served"] == "solve" for r in responses)
        assert server.coalescer.coalesced == 0
        assert server.solves == 3


def test_unit_platform_is_interchangeable_with_none():
    """`hom:n=3` at unit speed IS the paper's normalised platform —
    platform_fingerprint collapses both to the "unit" sentinel, so these
    requests *should* share one solve."""

    async def body(server):
        responses = await asyncio.gather(
            server.handle_request({"op": "solve", "id": 1, "workload": "fig1"}),
            server.handle_request(
                {"op": "solve", "id": 2, "workload": "fig1", "platform": "hom:n=3"}
            ),
        )
        assert sorted(r["served"] for r in responses) == ["coalesced", "solve"]
        assert server.solves == 1

    run(_with_server(body))

    run(_with_server(body))


def test_distinct_exactness_tiers_never_coalesce():
    async def body(server):
        responses = await asyncio.gather(*[
            server.handle_request(
                {"op": "solve", "id": i, "workload": "fig1", "exactness": tier}
            )
            for i, tier in enumerate(("exact", "certified", "fast"))
        ])
        assert all(r["served"] == "solve" for r in responses)
        assert server.coalescer.coalesced == 0
        assert server.solves == 3

    run(_with_server(body))


def test_result_cache_serves_warm_repeats():
    async def body(server):
        first = await server.handle_request(
            {"op": "solve", "id": 1, "workload": "fig1"}
        )
        second = await server.handle_request(
            {"op": "solve", "id": 2, "workload": "fig1"}
        )
        assert first["served"] == "solve"
        assert second["served"] == "result-cache"
        assert second["result"] == first["result"]
        assert server.solves == 1
        stats = (await server.handle_request({"op": "stats", "id": 3}))["result"]
        assert stats["result_cache"]["hits"] == 1

    run(_with_server(body))


def test_deadline_routes_to_portfolio():
    async def body(server):
        response = await server.handle_request(
            {"op": "solve", "id": 1, "workload": "random:n=6,seed=5",
             "deadline": 5.0}
        )
        assert response["ok"]
        assert response["result"]["method"].startswith("portfolio")

    run(_with_server(body))


# -------------------------------------------------------------- micro-batching


def test_compatible_requests_share_a_batch():
    async def body(server):
        responses = await asyncio.gather(*[
            server.handle_request(
                {"op": "solve", "id": i, "workload": f"random:n=5,seed={i}"}
            )
            for i in range(4)
        ])
        assert all(r["ok"] for r in responses)
        assert server.batcher.batches == 1
        assert server.batcher.batched_jobs == 4

    config = ServeConfig(batch_window=0.05)
    run(_with_server(body, config))


def test_incompatible_requests_split_batches():
    async def body(server):
        responses = await asyncio.gather(
            server.handle_request(
                {"op": "solve", "id": 1, "workload": "random:n=5,seed=1"}
            ),
            server.handle_request(
                {"op": "solve", "id": 2, "workload": "random:n=5,seed=2",
                 "objective": "latency"}
            ),
        )
        assert all(r["ok"] for r in responses)
        assert server.batcher.batches == 2

    config = ServeConfig(batch_window=0.05)
    run(_with_server(body, config))


def test_max_batch_flushes_immediately():
    async def body(server):
        responses = await asyncio.gather(*[
            server.handle_request(
                {"op": "solve", "id": i, "workload": f"random:n=5,seed={i}"}
            )
            for i in range(4)
        ])
        assert all(r["ok"] for r in responses)
        assert server.batcher.batches == 2  # 2 flushes of max_batch=2

    config = ServeConfig(batch_window=10.0, max_batch=2)
    run(_with_server(body, config))


# ---------------------------------------------------------- snapshot/restart


def test_snapshot_saved_on_shutdown_and_restored_on_start(tmp_path):
    snap = tmp_path / "warm.pkl"

    async def first(server):
        # a mapping workload (graph search) populates the evaluation
        # cache; a fixed-graph one like fig1 barely touches it
        await server.handle_request(
            {"op": "solve", "id": 1, "workload": "random:n=6,seed=1"}
        )
        bye = await server.handle_request({"op": "shutdown", "id": 2})
        assert bye["result"] == "bye"
        assert bye["saved_entries"] > 0
        return bye["saved_entries"]

    saved = run(_with_server(first, ServeConfig(snapshot_path=str(snap))))
    assert snap.exists()

    async def second(server):
        assert server.restored_entries == saved
        stats = (await server.handle_request({"op": "stats", "id": 1}))["result"]
        assert stats["server"]["restored_entries"] == saved

    run(_with_server(second, ServeConfig(snapshot_path=str(snap))))


def test_corrupt_snapshot_does_not_kill_startup(tmp_path):
    snap = tmp_path / "corrupt.pkl"
    snap.write_bytes(b"this is not a pickle")

    async def body(server):
        assert server.restored_entries == 0
        assert (await server.handle_request({"op": "ping", "id": 1}))["ok"]

    run(_with_server(body, ServeConfig(snapshot_path=str(snap))))


# ----------------------------------------------------------- stdio in-process


def test_run_stdio_with_injected_streams():
    """The stdio loop itself (no subprocess): ping/solve/bad-line/shutdown."""
    import io

    stdin = io.StringIO(
        '{"op": "ping", "id": 1}\n'
        "\n"  # blank lines are ignored
        "this is not json\n"
        '{"op": "solve", "id": 2, "workload": "fig1"}\n'
        '{"op": "shutdown", "id": 3}\n'
        '{"op": "ping", "id": 99}\n'  # after shutdown: never served
    )
    stdout = io.StringIO()

    async def body():
        server = PlannerServer(ServeConfig(batch_window=0.001))
        await server.run_stdio(stdin=stdin, stdout=stdout)
        await server.aclose()
        return server

    server = run(body())
    responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
    by_id = {r["id"]: r for r in responses}
    assert by_id[1]["result"] == "pong"
    assert by_id[None]["ok"] is False  # the bad line
    assert by_id[2]["result"]["value"] == "4"
    assert by_id[3]["result"] == "bye"
    assert 99 not in by_id
    assert server.errors == 1


def test_run_stdio_eof_exits_after_draining():
    import io

    stdin = io.StringIO('{"op": "solve", "id": 1, "workload": "fig1"}\n')
    stdout = io.StringIO()

    async def body():
        server = PlannerServer(ServeConfig(batch_window=0.001))
        await server.run_stdio(stdin=stdin, stdout=stdout)
        await server.aclose()

    run(body())
    responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
    assert len(responses) == 1 and responses[0]["ok"]


def test_serve_forever_tcp_only():
    """The CLI entry body: TCP-only mode serves until a shutdown request."""
    import threading

    from repro.serve.server import serve_forever

    announced = []
    results = {}

    async def body():
        task = asyncio.ensure_future(serve_forever(
            ServeConfig(batch_window=0.001),
            stdio=False,
            tcp="127.0.0.1:0",
            announce=announced.append,
        ))
        while not announced:  # wait for the bound-port announcement
            await asyncio.sleep(0.005)
        _, _, addr = announced[0].rpartition("tcp://")
        host, _, port = addr.partition(":")

        def client_body():
            with TcpServeClient(host, int(port)) as client:
                results["ping"] = client.request({"op": "ping", "id": 1})
                results["bye"] = client.shutdown()

        thread = threading.Thread(target=client_body)
        thread.start()
        server = await task
        thread.join(timeout=10)
        return server

    run(body())
    assert results["ping"]["result"] == "pong"
    assert results["bye"]["result"] == "bye"


# ------------------------------------------------------------------- TCP


def test_tcp_round_trip():
    async def body(server):
        host, port = await server.start_tcp()

        def client_calls():
            with TcpServeClient(host, port) as client:
                ping = client.request({"op": "ping", "id": 0})
                solved = client.request(
                    {"op": "solve", "id": 1, "workload": "fig1"}
                )
                return ping, solved

        ping, solved = await asyncio.get_running_loop().run_in_executor(
            None, client_calls
        )
        assert ping["result"] == "pong"
        assert solved["ok"] and solved["result"]["value"] == "4"

    run(_with_server(body))


# ------------------------------------------------------------------ replan


def test_resolve_replan_validates_parameters():
    from repro.serve import resolve_replan

    with pytest.raises(ProtocolError, match="unknown replan parameter"):
        resolve_replan({"bogus": 1})
    with pytest.raises(ProtocolError, match="'event' must be an object"):
        resolve_replan({"event": "admit"})
    with pytest.raises(ProtocolError, match="'budget' must be an integer"):
        resolve_replan({"budget": "two"})
    with pytest.raises(ProtocolError, match="'budget' must be >= 0"):
        resolve_replan({"budget": -1})
    with pytest.raises(ProtocolError, match="'platform' must be a spec"):
        resolve_replan({"platform": 7})
    with pytest.raises(ValueError, match="workload spec"):
        resolve_replan({"event": {"kind": "admit", "app": "a"}})
    job = resolve_replan({
        "event": {"kind": "admit", "app": "a", "workload": "fig1",
                  "rho": "40"},
        "budget": 2, "platform": "hom:n=3",
    })
    assert job.event.kind == "admit" and job.budget == 2
    assert job.platform_spec == "hom:n=3" and not job.reset


def test_replan_lifecycle():
    async def body(server):
        first = await server.handle_request({
            "op": "replan", "id": 1, "platform": "hom:n=3", "budget": 2,
            "event": {"kind": "admit", "app": "a", "workload": "fig1",
                      "rho": "40"},
        })
        assert first["ok"] and first["served"] == "replan"
        assert first["result"]["applications"] == ["a"]
        assert first["result"]["feasible"] is True
        assert len(first["result"]["admitted"]) == 5

        # the incumbent persists: a load event mutates it in place
        load = await server.handle_request({
            "op": "replan", "id": 2,
            "event": {"kind": "load", "app": "a", "rho": "20"},
        })
        assert load["ok"] and load["result"]["utilisation"] == "2/5"

        # no event: a status no-op that must not migrate anything
        status = await server.handle_request({"op": "replan", "id": 3})
        assert status["ok"] and status["result"]["noop"] is True
        assert status["result"]["mapping"] == load["result"]["mapping"]

        # a platform on a live incumbent is refused; reset starts over
        conflict = await server.handle_request(
            {"op": "replan", "id": 4, "platform": "hom:n=2"}
        )
        assert conflict["ok"] is False and "reset" in conflict["error"]
        fresh = await server.handle_request(
            {"op": "replan", "id": 5, "reset": True, "platform": "hom:n=2"}
        )
        assert fresh["ok"] and fresh["result"]["applications"] == []

        stats = (await server.handle_request({"op": "stats", "id": 6}))["result"]
        assert stats["server"]["replans"] == 4

    run(_with_server(body))


def test_replan_errors_do_not_corrupt_the_incumbent():
    async def body(server):
        # the very first replan needs a platform
        naked = await server.handle_request({
            "op": "replan", "id": 1,
            "event": {"kind": "noop"},
        })
        assert naked["ok"] is False and "platform" in naked["error"]

        await server.handle_request({
            "op": "replan", "id": 2, "platform": "hom:n=3",
            "event": {"kind": "admit", "app": "a", "workload": "fig1",
                      "rho": "40"},
        })
        bad = await server.handle_request({
            "op": "replan", "id": 3,
            "event": {"kind": "evict", "app": "zzz"},
        })
        assert bad["ok"] is False and "zzz" in bad["error"]
        # the incumbent survived the failed transition
        status = await server.handle_request({"op": "replan", "id": 4})
        assert status["ok"] and status["result"]["applications"] == ["a"]

    run(_with_server(body))


def test_concurrent_replans_apply_one_at_a_time():
    async def body(server):
        await server.handle_request({
            "op": "replan", "id": 0, "platform": "hom:n=4",
            "event": {"kind": "admit", "app": "seed", "workload": "fig1",
                      "rho": "200"},
        })
        responses = await asyncio.gather(*(
            server.handle_request({
                "op": "replan", "id": i,
                "event": {"kind": "admit", "app": f"a{i}",
                          "workload": "chain:n=3", "rho": "200"},
            })
            for i in range(4)
        ))
        assert all(r["ok"] for r in responses)
        status = await server.handle_request({"op": "replan", "id": 99})
        # every admission landed on the shared incumbent, in some order
        assert sorted(status["result"]["applications"]) == \
            ["a0", "a1", "a2", "a3", "seed"]

    run(_with_server(body))


# ------------------------------------------------------------- stdio smoke


@pytest.mark.smoke
def test_stdio_smoke_solve_stats_shutdown():
    """The real daemon subprocess: solve, stats, shutdown, clean exit."""
    with StdioServeClient() as client:
        assert client.request({"op": "ping", "id": 0})["result"] == "pong"
        solved = client.request({"op": "solve", "id": 1, "workload": "fig1"})
        assert solved["ok"] and solved["result"]["value"] == "4"
        repeat = client.request({"op": "solve", "id": 2, "workload": "fig1"})
        assert repeat["served"] == "result-cache"
        stats = client.request({"op": "stats", "id": 3})["result"]
        assert stats["server"]["solves"] == 1
        assert stats["result_cache"]["hits"] == 1
        malformed = client.request({"op": "what"})
        assert malformed["ok"] is False
        bye = client.shutdown()
        assert bye["ok"] and bye["result"] == "bye"
        assert client.close() == 0


@pytest.mark.smoke
def test_stdio_smoke_eof_is_a_clean_exit():
    client = StdioServeClient()
    assert client.request({"op": "ping", "id": 0})["result"] == "pong"
    assert client.close() == 0  # EOF without shutdown: drain and leave


@pytest.mark.smoke
def test_stdio_smoke_snapshot_across_restarts(tmp_path):
    snap = tmp_path / "warm.pkl"
    with StdioServeClient(["--snapshot", str(snap)]) as client:
        client.request({"op": "solve", "id": 1, "workload": "random:n=6,seed=1"})
        bye = client.shutdown()
        assert bye["saved_entries"] > 0
        assert client.close() == 0
    with StdioServeClient(["--snapshot", str(snap)]) as client:
        stats = client.request({"op": "stats", "id": 1})["result"]
        assert stats["server"]["restored_entries"] > 0
        client.shutdown()
        assert client.close() == 0
