"""Calibration: noise-free traces must recover the true parameters exactly.

The identifiability story under test:

* selectivities pair input/output sizes per (service, dataset), so they
  are exact even under per-dataset size jitter;
* costs and speeds share a gauge (a comp record only pins ``c/s``) —
  observing services on several servers plus the anchor (lexicographic
  smallest server at speed 1, or ``known_speeds``) breaks it;
* the fitted parameters must be *useful*: planning on the fitted
  application/platform picks the same plan as the truth.
"""

from fractions import Fraction

import pytest

from repro import make_application
from repro.calibrate import (
    CalibrationTrace,
    TraceRecord,
    fit_trace,
    records_from_plan,
    records_from_policy,
    synthetic_records,
)
from repro.core import Link, Mapping, Platform, Server, UncertainValue, quantile
from repro.planner import load_workload, solve
from repro.workloads.paper import fig1_example

F = Fraction


def selective_app():
    return make_application(
        [("A", 3, "1/2"), ("B", 5, "3/4"), ("C", 2, "4/5"), ("D", 7, 1)]
    )


def het_platform():
    return Platform(
        [
            Server("S1", 1),
            Server("S2", 2),
            Server("S3", 4),
            Server("S4", 3),
            Server("S5", F(1, 2)),
        ],
        links=[Link("S1", "S2", F(1, 2)), Link("S2", "S3", F(3))],
    )


class TestUncertainValue:
    def test_from_samples_quantiles_are_exact_fractions(self):
        uv = UncertainValue.from_samples([F(1), F(2), F(3), F(4), F(5)])
        assert uv.nominal == 3
        assert uv.lo == 1 and uv.hi == 5
        assert uv.width == 4

    def test_point_and_interval(self):
        assert UncertainValue.point(F(2)).width == 0
        uv = UncertainValue.interval(F(10), F(1, 10))
        assert (uv.lo, uv.hi) == (9, 11)

    def test_ordering_validated(self):
        with pytest.raises(ValueError):
            UncertainValue(F(1), F(2), F(3))

    def test_quantile_nearest_rank(self):
        values = [F(10), F(20), F(30), F(40)]
        assert quantile(values, F(1, 2)) == 20
        assert quantile(values, F(9, 10)) == 40
        assert quantile(values, F(1, 100)) == 10


class TestNoiseFreeRoundTrip:
    def test_unit_platform_recovers_costs_and_selectivities_exactly(self):
        app = selective_app()
        graph = solve(app, schedule=False).graph
        trace = CalibrationTrace(synthetic_records(graph, n_datasets=3))
        fit = fit_trace(trace)
        for service in app:
            assert fit.costs[service.name].nominal == service.cost
            assert fit.costs[service.name].width == 0
            assert fit.selectivities[service.name].nominal == service.selectivity
        assert fit.residuals["comp"] == 0
        assert fit.residuals["comm"] == 0
        assert fit.application(app) == app

    def test_size_jitter_does_not_disturb_selectivities(self):
        app = selective_app()
        graph = solve(app, schedule=False).graph
        trace = CalibrationTrace(
            synthetic_records(graph, n_datasets=4, size_jitter=F(1, 5), seed=3)
        )
        fit = fit_trace(trace)
        for service in app:
            assert fit.selectivities[service.name].nominal == service.selectivity

    def test_het_platform_recovers_speeds_and_bandwidths_exactly(self):
        app = selective_app()
        platform = het_platform()
        graph = solve(app, platform=platform, schedule=False).graph
        names = list(app.names)
        servers = sorted(s.name for s in platform.servers)
        # two rotated mappings observe every service on two servers,
        # which (with the S1=1 gauge anchor) pins every cost and speed
        trace = CalibrationTrace()
        for rotation in range(2):
            mapping = Mapping(
                {n: servers[(i + rotation) % len(servers)]
                 for i, n in enumerate(names)}
            )
            trace = trace + CalibrationTrace(synthetic_records(
                graph, platform, mapping, n_datasets=2, start=rotation * 2,
            ))
        fit = fit_trace(trace)
        for server in platform.servers:
            assert fit.speeds[server.name].nominal == server.speed, server
        for service in app:
            assert fit.costs[service.name].nominal == service.cost
        # only traversed pairs are observable; each observed one is exact
        assert fit.bandwidths[("S2", "S3")].nominal == 3
        for (u, v), uv in fit.bandwidths.items():
            assert uv.nominal == platform.bandwidth(u, v), (u, v)
        assert fit.default_bandwidth.nominal == 1
        # full round-trip: the rebuilt platform is content-identical
        assert fit.platform(platform).key() == platform.key()
        assert fit.application(app) == app

    def test_policy_trace_records_fit_exactly(self):
        inst = fig1_example()
        trace = CalibrationTrace(records_from_policy(inst.graph, n_datasets=3))
        fit = fit_trace(trace)
        for service in inst.application:
            assert fit.costs[service.name].nominal == service.cost
        assert fit.residuals["comp"] == 0

    def test_plan_records_fit_costs_exactly(self):
        inst = fig1_example()
        plan = solve(inst.graph).plan
        trace = CalibrationTrace(records_from_plan(plan, n_datasets=2))
        fit = fit_trace(trace)
        for service in inst.application:
            assert fit.costs[service.name].nominal == service.cost


class TestFittedPlansMatchTruth:
    @pytest.mark.parametrize(
        "spec", ["fig1", "random:n=6,seed=1", "noisy:n=6,seed=2"]
    )
    def test_fitted_application_plans_like_the_truth(self, spec):
        workload = load_workload(spec)
        app = workload.application
        truth = solve(app, schedule=False)
        trace = CalibrationTrace(synthetic_records(truth.graph, n_datasets=3))
        fitted_app = fit_trace(trace).application(app)
        assert fitted_app == app  # noise-free fit is the truth...
        refit = solve(fitted_app, schedule=False)
        assert refit.value == truth.value  # ...so plans must agree
        assert refit.graph.edges == truth.graph.edges

    def test_fitted_platform_plans_like_the_truth(self):
        app = selective_app()
        platform = het_platform()
        truth = solve(app, platform=platform, schedule=False)
        names = list(app.names)
        servers = sorted(s.name for s in platform.servers)
        trace = CalibrationTrace()
        for rotation in range(2):
            mapping = Mapping(
                {n: servers[(i + rotation) % len(servers)]
                 for i, n in enumerate(names)}
            )
            trace = trace + CalibrationTrace(synthetic_records(
                truth.graph, platform, mapping, n_datasets=2,
                start=rotation * 2,
            ))
        fit = fit_trace(trace)
        refit = solve(
            fit.application(app), platform=fit.platform(platform),
            schedule=False,
        )
        assert refit.value == truth.value


class TestNoisyFit:
    def test_noisy_fit_lands_near_the_truth_with_real_intervals(self):
        app = selective_app()
        graph = solve(app, schedule=False).graph
        trace = CalibrationTrace(
            synthetic_records(graph, n_datasets=12, noise=F(1, 10), seed=5)
        )
        fit = fit_trace(trace)
        for service in app:
            uv = fit.costs[service.name]
            assert abs(uv.nominal - service.cost) <= service.cost * F(1, 8)
            assert uv.lo <= uv.nominal <= uv.hi and uv.width > 0
        assert fit.residuals["comp"] > 0
        spec = fit.robust_spec(mode="worst_case", scenarios=4)
        assert spec.empirical  # the fit's uncertainty feeds robust planning


class TestTraceIO:
    def test_csv_round_trip(self, tmp_path):
        inst = fig1_example()
        trace = CalibrationTrace(synthetic_records(inst.graph, n_datasets=2))
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        loaded = CalibrationTrace.load_csv(path)
        assert loaded.records == trace.records
        assert fit_trace(loaded).costs == fit_trace(trace).costs

    def test_malformed_csv_names_the_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "time,dataset,kind,service,server,src,dst,src_server,dst_server,"
            "size,duration\n"
            "0,0,comp,A,S1,,,,,1,2\n"
            "1,0,chomp,A,S1,,,,,1,2\n"
        )
        with pytest.raises(ValueError, match="row 3"):
            CalibrationTrace.load_csv(path)

    def test_record_validation(self):
        with pytest.raises(ValueError, match="kind"):
            TraceRecord(kind="nap", dataset=0, size=F(1), duration=F(1))
        with pytest.raises(ValueError, match="size"):
            TraceRecord.comp("A", "S1", dataset=0, size=F(0), duration=F(1))
        with pytest.raises(ValueError, match="dataset"):
            TraceRecord.comp("A", "S1", dataset=-1, size=F(1), duration=F(1))


class TestCalibrateCLI:
    def test_calibrate_workload_text_report(self, capsys):
        from repro.__main__ import main

        assert main(["calibrate", "fig1", "--datasets", "2"]) == 0
        out = capsys.readouterr().out
        assert "calibration fit over" in out
        assert "cost C1" in out

    def test_calibrate_trace_csv_and_json_out(self, tmp_path, capsys):
        from repro.__main__ import main

        inst = fig1_example()
        csv_path = tmp_path / "trace.csv"
        CalibrationTrace(
            synthetic_records(inst.graph, n_datasets=2)
        ).save_csv(csv_path)
        out_path = tmp_path / "fit.json"
        code = main([
            "calibrate", "--trace", str(csv_path),
            "--json", "--out", str(out_path),
        ])
        assert code == 0
        import json

        payload = json.loads(out_path.read_text())
        assert payload["costs"]["C1"]["nominal"] == "4"

    def test_calibrate_without_input_is_an_error(self, capsys):
        from repro.__main__ import main

        assert main(["calibrate"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
