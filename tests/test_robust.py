"""Robust planning: spec parsing, scenario sampling, solve(robust=...).

The load-bearing guarantees:

* ``robust=None`` changes nothing — ``solve_key`` is bit-for-bit the
  pre-robust 9-tuple and ``solve`` returns the identical result.
* The robust winner's exact robust score is never worse than the nominal
  optimum's robust score on the same scenario set (the nominal candidate
  is always certified).
* Scenario sampling is seeded and deterministic.
"""

from fractions import Fraction

import pytest

from repro import make_application
from repro.core import Platform, Server, UncertainValue
from repro.planner import load_workload, solve, solve_key
from repro.robust import (
    MODES,
    RobustSpec,
    degradation_report,
    robust_value,
    sample_scenarios,
)

F = Fraction

EPS10 = dict(cost_rel=F(1, 10), selectivity_rel=F(1, 10))


def fragile_app(seed=4, n=6):
    return load_workload(f"noisy:n={n},seed={seed}").application


class TestRobustSpec:
    def test_parse_round_trips_through_key(self):
        spec = RobustSpec.parse("worst_case:eps=1/10,k=8,seed=3")
        assert spec.mode == "worst_case"
        assert spec.cost_rel == spec.selectivity_rel == F(1, 10)
        assert spec.scenarios == 8 and spec.seed == 3
        assert spec.key() == RobustSpec(
            mode="worst_case", scenarios=8, seed=3, **EPS10
        ).key()

    def test_explicit_family_options_override_eps(self):
        spec = RobustSpec.parse("expected:eps=1/10,cost=1/4,bw=1/8,speed=1/16")
        assert spec.cost_rel == F(1, 4)
        assert spec.selectivity_rel == F(1, 10)  # eps still covers sel
        assert spec.bandwidth_rel == F(1, 8)
        assert spec.speed_rel == F(1, 16)

    def test_quantile_requires_q_and_q_requires_quantile(self):
        with pytest.raises(ValueError, match="needs q"):
            RobustSpec(mode="quantile", **EPS10)
        with pytest.raises(ValueError, match="only applies"):
            RobustSpec(mode="worst_case", q=F(1, 2), **EPS10)
        with pytest.raises(ValueError, match="in \\(0, 1\\]"):
            RobustSpec(mode="quantile", q=F(3, 2), **EPS10)

    def test_empty_spec_is_rejected(self):
        with pytest.raises(ValueError, match="perturbs nothing"):
            RobustSpec(mode="worst_case")

    def test_unknown_mode_and_options_are_rejected(self):
        with pytest.raises(ValueError, match="unknown robust mode"):
            RobustSpec.parse("pessimal:eps=1/10")
        with pytest.raises(ValueError, match="unknown option"):
            RobustSpec.parse("worst_case:eps=1/10,zzz=3")

    def test_rel_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="cost_rel"):
            RobustSpec(cost_rel=F(3, 2))
        with pytest.raises(ValueError, match="scenarios"):
            RobustSpec(scenarios=0, **EPS10)

    def test_coerce(self):
        assert RobustSpec.coerce(None) is None
        spec = RobustSpec(**EPS10)
        assert RobustSpec.coerce(spec) is spec
        assert RobustSpec.coerce("worst_case:eps=1/10").key() == spec.key()
        with pytest.raises(TypeError):
            RobustSpec.coerce({"mode": "worst_case"})

    def test_modes_constant_matches_validation(self):
        assert MODES == ("worst_case", "expected", "quantile")


class TestScenarioSampling:
    def test_seeded_and_deterministic(self):
        app = fragile_app()
        spec = RobustSpec(scenarios=5, seed=7, **EPS10)
        a = sample_scenarios(spec, app)
        b = sample_scenarios(spec, app)
        assert [s.application for s in a] == [s.application for s in b]
        other = sample_scenarios(RobustSpec(scenarios=5, seed=8, **EPS10), app)
        assert [s.application for s in a] != [s.application for s in other]

    def test_perturbations_stay_inside_the_interval(self):
        app = fragile_app()
        spec = RobustSpec(scenarios=6, seed=1, **EPS10)
        for scenario in sample_scenarios(spec, app):
            for true, drawn in zip(app, scenario.application):
                assert abs(drawn.cost - true.cost) <= true.cost * F(1, 10)
                assert (
                    abs(drawn.selectivity - true.selectivity)
                    <= true.selectivity * F(1, 10)
                )

    def test_platform_perturbation_needs_a_platform(self):
        spec = RobustSpec(speed_rel=F(1, 10))
        with pytest.raises(ValueError, match="explicit platform"):
            sample_scenarios(spec, fragile_app())

    def test_platform_perturbation_stays_inside_interval(self):
        app = make_application([("A", 2, "1/2"), ("B", 4, 1)])
        plat = Platform([Server("S1", 1), Server("S2", 2), Server("S3", 3)])
        spec = RobustSpec(speed_rel=F(1, 10), bandwidth_rel=F(1, 10))
        for scenario in sample_scenarios(spec, app, plat):
            for server in plat.servers:
                drawn = scenario.platform.speed(server.name)
                assert abs(drawn - server.speed) <= server.speed * F(1, 10)


class TestRobustValue:
    def test_modes(self):
        spec_w = RobustSpec(**EPS10)
        spec_e = RobustSpec(mode="expected", **EPS10)
        spec_q = RobustSpec(mode="quantile", q=F(1, 2), **EPS10)
        values = [F(3), F(1), F(2)]
        assert robust_value(values, spec_w) == 3
        assert robust_value(values, spec_e) == 2
        assert robust_value(values, spec_q) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            robust_value([], RobustSpec(**EPS10))


class TestSolveRobust:
    def test_robust_none_key_is_bit_for_bit_the_legacy_key(self):
        app = fragile_app()
        key = solve_key(app)
        assert key == solve_key(app, robust=None)
        assert len(key) == 9  # the pre-robust 9-tuple, unchanged
        robust_key = solve_key(app, robust="worst_case:eps=1/10")
        assert robust_key[:9] == key
        assert robust_key[9][0] == "robust"

    def test_robust_none_solve_is_identical(self):
        app = fragile_app()
        a = solve(app)
        b = solve(app, robust=None)
        assert a.value == b.value and a.graph == b.graph
        assert a.method == b.method
        assert "robust" not in b.stats.extras

    def test_winner_never_worse_than_nominal_under_robust_score(self):
        for seed in (0, 4, 12):
            app = fragile_app(seed=seed)
            result = solve(app, robust=RobustSpec(scenarios=8, seed=seed, **EPS10))
            extras = result.stats.extras["robust"]
            assert result.value <= F(extras["nominal_plan_score"])
            assert result.method.startswith("robust(")
            assert result.plan is not None and result.plan.is_valid()

    def test_robust_plan_differs_and_improves_on_a_fragile_instance(self):
        # seed 5 chosen so the nominal optimum is strictly dominated.
        app = fragile_app(seed=5)
        spec = RobustSpec(scenarios=10, seed=5, **{
            "cost_rel": F(15, 100), "selectivity_rel": F(15, 100)})
        result = solve(app, robust=spec)
        extras = result.stats.extras["robust"]
        assert not extras["winner_is_nominal"]
        assert result.value < F(extras["nominal_plan_score"])

    def test_all_modes_solve(self):
        app = fragile_app(seed=1, n=5)
        for robust in (
            "worst_case:eps=1/10,k=6",
            "expected:eps=1/10,k=6",
            "quantile:q=9/10,eps=1/10,k=6",
        ):
            result = solve(app, robust=robust)
            assert result.value > 0
            assert result.stats.extras["robust"]["scenarios"] == 6

    def test_fixed_graph_problem(self):
        app = fragile_app(seed=2, n=5)
        graph = solve(app, schedule=False).graph
        result = solve(graph, robust="worst_case:eps=1/10,k=5")
        extras = result.stats.extras["robust"]
        assert extras["candidates"] == 1 and extras["winner_is_nominal"]
        # the score is the worst case across scenarios, >= the nominal value
        assert result.value >= solve(graph, schedule=False).value

    def test_empirical_spec(self):
        app = make_application([("A", 2, "1/2"), ("B", 4, "3/4"), ("C", 6, 1)])
        uv = UncertainValue.from_samples([F(2), F(5, 2), F(3)])
        spec = RobustSpec(
            mode="worst_case", scenarios=4,
            empirical=(("cost", "A", uv),),
        )
        result = solve(app, robust=spec)
        assert result.stats.extras["robust"]["spec"].endswith("empirical=1)")

    def test_heterogeneous_platform_robust(self):
        app = make_application([("A", 2, "1/2"), ("B", 4, "3/4"), ("C", 6, 1)])
        plat = Platform([Server("S1", 1), Server("S2", 2), Server("S3", 3)])
        result = solve(
            app, platform=plat,
            robust="worst_case:eps=1/10,speed=1/10,bw=1/10,k=5",
        )
        assert result.value > 0
        assert result.stats.extras["robust"]["scenarios"] == 5


class TestDegradationReport:
    def test_report_consistency(self):
        app = fragile_app(seed=4)
        spec = RobustSpec(scenarios=8, seed=4, **EPS10)
        report = degradation_report(app, spec)
        assert len(report.rows) == 8
        # the certified guarantee: robust score <= nominal plan's score
        assert report.robust_score <= report.nominal_score
        assert report.robust_worst_ratio >= 1
        for row in report.rows:
            assert F(row["nominal_ratio"]) >= 1
            assert F(row["robust_ratio"]) >= 1
        payload = report.as_dict()
        assert payload["mode"] == "worst_case"
        assert len(payload["scenarios"]) == 8
        assert report.summary_table().startswith("degradation under")


class TestServeProtocol:
    def test_robust_param_threads_through_and_keys_discriminate(self):
        from repro.serve.protocol import ProtocolError, resolve_solve

        job = resolve_solve(
            {"workload": "noisy:n=5,seed=1", "robust": "worst_case:eps=1/10,k=4"}
        )
        assert dict(job.group)["robust"] == "worst_case:eps=1/10,k=4"
        plain = resolve_solve({"workload": "noisy:n=5,seed=1"})
        assert job.key != plain.key
        with pytest.raises(ProtocolError, match="spec string"):
            resolve_solve({"workload": "fig1", "robust": {"mode": "worst_case"}})
