"""End-to-end tests of the executable NP-hardness gadgets (Figs 9-12, P17)."""

from fractions import Fraction

import pytest

from repro.core import CommModel, CostModel
from repro.reductions import (
    forest_latency,
    minlatency,
    minperiod_oneport,
    minperiod_overlap,
    orchestration_latency,
    orchestration_period,
)
from repro.reductions.partition import PartitionInstance
from repro.reductions.rn3dm import RN3DMInstance, is_solvable

SOLVABLE = [(2, 4, 6), (3, 4, 5), (3, 3, 6)]
SOLVABLE_N4 = [(2, 4, 6, 8), (5, 5, 5, 5)]
UNSOLVABLE = [(2, 2, 8, 8)]


class TestFig9OrchestrationPeriod:
    """Props 2-3: one-port period orchestration on the fork-join gadget."""

    @pytest.mark.parametrize("A", SOLVABLE)
    def test_forward_reaches_K(self, A):
        g = orchestration_period.build(RN3DMInstance(A))
        assert orchestration_period.forward_period(g) == g.K

    @pytest.mark.parametrize("A", SOLVABLE)
    def test_saturated_servers(self, A):
        g = orchestration_period.build(RN3DMInstance(A))
        cm = CostModel(g.graph)
        n = g.instance.n
        assert cm.cexec("C1", CommModel.INORDER) == g.K
        assert cm.cexec(f"C{2 * n + 5}", CommModel.INORDER) == g.K

    @pytest.mark.parametrize("A", SOLVABLE + UNSOLVABLE)
    def test_decision_matches_solvability(self, A):
        inst = RN3DMInstance(A)
        g = orchestration_period.build(inst)
        assert orchestration_period.decision(g) == is_solvable(inst)


class TestFig10MinPeriodOverlap:
    """Prop 5: MinPeriod-OVERLAP gadget."""

    @pytest.mark.parametrize("A", SOLVABLE + SOLVABLE_N4)
    def test_forward_reaches_K(self, A):
        g = minperiod_overlap.build(RN3DMInstance(A))
        assert minperiod_overlap.forward_period(g) <= g.K

    @pytest.mark.parametrize("A", SOLVABLE + SOLVABLE_N4 + UNSOLVABLE)
    def test_structure_decision_matches_solvability(self, A):
        inst = RN3DMInstance(A)
        g = minperiod_overlap.build(inst)
        assert minperiod_overlap.structure_restricted_decision(g) == is_solvable(
            inst
        )

    @pytest.mark.parametrize("A", SOLVABLE + UNSOLVABLE)
    def test_observations_hold(self, A):
        g = minperiod_overlap.build(RN3DMInstance(A))
        assert minperiod_overlap.verify_observations(g) == []

    def test_parameters_are_exact(self):
        for n in (2, 3, 4, 5, 6):
            a, b, gamma = minperiod_overlap.find_parameters(n)
            assert Fraction(3, 4) < a ** (2 * n) < b ** (2 * n) < Fraction(4, 5)
            assert 1 < gamma
            assert gamma**n < b / a


class TestFig11MinPeriodOnePort:
    """Props 6-7: MinPeriod one-port gadget."""

    @pytest.mark.parametrize("A", SOLVABLE + SOLVABLE_N4)
    def test_forward_reaches_K(self, A):
        g = minperiod_oneport.build(RN3DMInstance(A))
        assert minperiod_oneport.forward_period(g) <= g.K

    @pytest.mark.parametrize("A", SOLVABLE + SOLVABLE_N4 + UNSOLVABLE)
    def test_structure_decision_matches_solvability(self, A):
        inst = RN3DMInstance(A)
        g = minperiod_oneport.build(inst)
        assert minperiod_oneport.structure_restricted_decision(
            g
        ) == is_solvable(inst)

    @pytest.mark.parametrize("A", SOLVABLE + UNSOLVABLE)
    def test_observations_hold(self, A):
        g = minperiod_oneport.build(RN3DMInstance(A))
        assert minperiod_oneport.verify_observations(g) == []

    def test_forward_bound_is_achievable(self):
        """The star-of-chains bound is met by a real INORDER schedule."""
        from repro.scheduling import exact_inorder_period

        inst = RN3DMInstance((2, 4))  # n = 2 keeps the order space small
        g = minperiod_oneport.build(inst)
        from repro.reductions.rn3dm import solve

        graph = minperiod_oneport.star_chain_plan(g, *solve(inst))
        lam, plan = exact_inorder_period(graph)
        assert lam == minperiod_oneport.plan_period_bound(g, graph)
        assert plan.validate().ok


class TestFig12OrchestrationLatency:
    """Props 9-11: fork-join latency orchestration."""

    @pytest.mark.parametrize("A", SOLVABLE)
    def test_forward_reaches_K(self, A):
        g = orchestration_latency.build(RN3DMInstance(A))
        assert orchestration_latency.forward_latency(g) == g.K

    @pytest.mark.parametrize("A", SOLVABLE + UNSOLVABLE)
    def test_decision_matches_solvability(self, A):
        inst = RN3DMInstance(A)
        g = orchestration_latency.build(inst)
        assert orchestration_latency.decision(g) == is_solvable(inst)

    @pytest.mark.parametrize("A", SOLVABLE + UNSOLVABLE)
    def test_formula_matches_branch_and_bound(self, A):
        """The closed-form fork-join optimum equals the generic exact
        scheduler — validating both."""
        g = orchestration_latency.build(RN3DMInstance(A))
        assert orchestration_latency.optimal_latency(
            g
        ) == orchestration_latency.optimal_latency_branch_and_bound(g)

    def test_unsolvable_strictly_above_K(self):
        g = orchestration_latency.build(RN3DMInstance((2, 2, 8, 8)))
        assert orchestration_latency.optimal_latency(g) > g.K


class TestMinLatencyGadget:
    """Props 13-15."""

    @pytest.mark.parametrize("A", SOLVABLE + UNSOLVABLE)
    def test_decision_matches_solvability(self, A):
        inst = RN3DMInstance(A)
        g = minlatency.build(inst)
        assert minlatency.decision(g) == is_solvable(inst)

    @pytest.mark.parametrize("A", SOLVABLE)
    def test_forward_within_K(self, A):
        """K upper-bounds the solvable optimum (the paper bounds each
        branch by ``c_F + sigma_F * 10n``); the exact optimum sits slightly
        below because the last receive slot saves ``(1 - sigma) *
        lambda2``."""
        g = minlatency.build(RN3DMInstance(A))
        forward = minlatency.forward_latency(g)
        assert forward is not None
        assert forward <= g.K
        assert minlatency.optimal_fork_join_latency(g) <= forward

    @pytest.mark.parametrize("A", SOLVABLE + UNSOLVABLE)
    def test_wrong_structures_penalised(self, A):
        g = minlatency.build(RN3DMInstance(A))
        for label, bound in minlatency.structure_penalties(g):
            assert bound > g.K, label


class TestForestLatencyGadget:
    """Prop 17 — reproduction finding: the printed gadget is monotone."""

    def test_full_chain_is_optimal_not_balance(self):
        """Measured behaviour: latency decreases with the chained sum, so
        the minimum is the full chain regardless of partition solvability
        (see the module docstring and EXPERIMENTS.md)."""
        g = forest_latency.build(PartitionInstance((3, 5, 3, 5)))
        profile = forest_latency.full_profile(g)
        best_latency = min(lat for _, lat in profile)
        full = forest_latency.subset_latency(g, range(4))
        assert full == best_latency

    def test_monotone_in_chained_sum(self):
        g = forest_latency.build(PartitionInstance((2, 3, 4, 5)))
        import itertools

        rows = []
        for size in range(5):
            for subset in itertools.combinations(range(4), size):
                s = sum(g.instance.xs[i] for i in subset)
                rows.append((s, forest_latency.subset_latency(g, subset)))
        rows.sort()
        # latency strictly decreases as the chained sum grows
        for (s1, l1), (s2, l2) in zip(rows, rows[1:]):
            if s1 < s2:
                assert l1 > l2

    def test_gadget_constants_match_paper(self):
        g = forest_latency.build(PartitionInstance((3, 5, 3, 5)))
        app = g.application
        S, A = 16, g.A
        assert app.cost("C5") == Fraction(2 * A + S, 2 * A - 2 * S)
        assert g.beta == Fraction(A - S, 2 * A + S)
        assert app.selectivity("C1") == 1 - Fraction(3, A) + g.beta * Fraction(
            3, A
        ) ** 2

    def test_comm_inclusive_latency_also_monotone(self):
        g = forest_latency.build(PartitionInstance((3, 5, 3, 5)))
        assert not forest_latency.decision(g, include_comm=True)
