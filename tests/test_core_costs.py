"""Unit tests for repro.core.costs against the paper's worked numbers."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    INPUT,
    OUTPUT,
    CommModel,
    CostModel,
    ExecutionGraph,
    comm_edges,
    make_application,
)


@pytest.fixture
def fig1():
    app = make_application([(f"C{i}", 4, 1) for i in range(1, 6)])
    g = ExecutionGraph(
        app,
        [("C1", "C2"), ("C1", "C4"), ("C2", "C3"), ("C3", "C5"), ("C4", "C5")],
    )
    return CostModel(g)


class TestFig1Costs:
    """Section 2.3: five unit-selectivity services of cost 4."""

    def test_sizes(self, fig1):
        for i in range(1, 6):
            assert fig1.ancestor_selectivity(f"C{i}") == 1
            assert fig1.outsize(f"C{i}") == 1

    def test_cin(self, fig1):
        assert fig1.cin("C1") == 1  # input node
        assert fig1.cin("C2") == 1
        assert fig1.cin("C5") == 2  # from C3 and C4

    def test_cout(self, fig1):
        assert fig1.cout("C1") == 2  # to C2 and C4
        assert fig1.cout("C5") == 1  # output node
        assert fig1.cout("C2") == 1

    def test_ccomp(self, fig1):
        for i in range(1, 6):
            assert fig1.ccomp(f"C{i}") == 4

    def test_overlap_period_bound_is_4(self, fig1):
        assert fig1.period_lower_bound(CommModel.OVERLAP) == 4

    def test_oneport_period_bound_is_7(self, fig1):
        # C1: 1 + 4 + 2 = 7; C5: 2 + 4 + 1 = 7
        assert fig1.period_lower_bound(CommModel.INORDER) == 7
        assert fig1.period_lower_bound(CommModel.OUTORDER) == 7

    def test_latency_lower_bound_is_21(self, fig1):
        # in(1) + C1(4) + comm + C2(4) + comm + C3(4) + comm + C5(4) + out(1)
        assert fig1.latency_lower_bound() == 21

    def test_comm_edges(self, fig1):
        edges = comm_edges(fig1.graph)
        assert (INPUT, "C1") in edges
        assert ("C5", OUTPUT) in edges
        assert len(edges) == 5 + 2  # five graph edges + input + output


class TestB1Costs:
    """Counter-example B.1 (Figure 4): communication costs matter."""

    @staticmethod
    def app():
        specs = [("C1", 100, Fraction(9999, 10000)), ("C2", 100, Fraction(9999, 10000))]
        specs += [
            (f"C{i}", Fraction(100, Fraction(9999, 10000)), 100)
            for i in range(3, 203)
        ]
        return make_application(specs)

    def test_two_chain_plan_has_period_100(self):
        app = self.app()
        edges = [("C1", f"C{i}") for i in range(3, 103)]
        edges += [("C2", f"C{i}") for i in range(103, 203)]
        costs = CostModel(ExecutionGraph(app, edges))
        assert costs.period_lower_bound(CommModel.OVERLAP) == 100
        # the binding constraints
        assert costs.cout("C1") == Fraction(9999, 100)  # 100 * 0.9999
        assert costs.ccomp("C3") == 100

    def test_chain_plan_blows_up_on_outgoing_comm(self):
        """Chaining C1 -> C2 and fanning out 200 successors: Cout(C2) = 200 sigma1 sigma2."""
        app = self.app()
        edges = [("C1", "C2")] + [("C2", f"C{i}") for i in range(3, 203)]
        costs = CostModel(ExecutionGraph(app, edges))
        expected = 200 * Fraction(9999, 10000) ** 2
        assert costs.cout("C2") == expected
        assert costs.period_lower_bound(CommModel.OVERLAP) == expected
        assert expected > 100  # the whole point of the counter-example

    def test_expander_chaining_exceeds_bound(self):
        """Putting one expander after another breaks the 100 bound (paper's claim)."""
        app = self.app()
        edges = [("C1", f"C{i}") for i in range(3, 103)]
        edges += [("C2", f"C{i}") for i in range(103, 202)]
        edges += [("C201", "C202")]
        costs = CostModel(ExecutionGraph(app, edges))
        assert costs.ccomp("C202") > 100


class TestB2Costs:
    """Counter-example B.2 (Figure 5): the bipartite latency instance."""

    @staticmethod
    def cost_model():
        from repro.workloads.paper import b2_latency_ports

        inst = b2_latency_ports()
        return CostModel(inst.graph)

    def test_all_in_out_loads_are_six(self):
        costs = self.cost_model()
        for i in range(1, 7):
            assert costs.cout(f"C{i}") == 6
        for j in range(7, 13):
            assert costs.cin(f"C{j}") == 6
            assert costs.ccomp(f"C{j}") == 6


class TestGeneralProperties:
    @given(st.data())
    def test_cin_is_sum_of_message_sizes(self, data):
        n = data.draw(st.integers(2, 6))
        costs_list = data.draw(
            st.lists(
                st.fractions(min_value=0, max_value=10),
                min_size=n,
                max_size=n,
            )
        )
        sels = data.draw(
            st.lists(
                st.fractions(min_value=Fraction(1, 10), max_value=5),
                min_size=n,
                max_size=n,
            )
        )
        app = make_application(
            [(f"C{i}", costs_list[i], sels[i]) for i in range(n)]
        )
        edges = []
        for j in range(1, n):
            for i in range(j):
                if data.draw(st.booleans()):
                    edges.append((f"C{i}", f"C{j}"))
        g = ExecutionGraph(app, edges)
        cm = CostModel(g)
        for node in g.nodes:
            preds = g.predecessors(node)
            if preds:
                assert cm.cin(node) == sum(
                    cm.message_size(p, node) for p in preds
                )
            else:
                assert cm.cin(node) == 1

    @given(st.data())
    def test_cexec_relationship(self, data):
        n = data.draw(st.integers(2, 5))
        app = make_application(
            [
                (
                    f"C{i}",
                    data.draw(st.fractions(min_value=0, max_value=10)),
                    data.draw(
                        st.fractions(min_value=Fraction(1, 10), max_value=5)
                    ),
                )
                for i in range(n)
            ]
        )
        edges = [(f"C{i}", f"C{i+1}") for i in range(n - 1)]
        cm = CostModel(ExecutionGraph(app, edges))
        for node in app.names:
            over = cm.cexec(node, CommModel.OVERLAP)
            seq = cm.cexec(node, CommModel.INORDER)
            assert seq == cm.cin(node) + cm.ccomp(node) + cm.cout(node)
            assert over <= seq
            assert cm.cexec(node, CommModel.OUTORDER) == seq

    @given(st.data())
    def test_period_bound_monotone_in_model(self, data):
        n = data.draw(st.integers(2, 5))
        app = make_application(
            [
                (
                    f"C{i}",
                    data.draw(st.fractions(min_value=0, max_value=10)),
                    data.draw(
                        st.fractions(min_value=Fraction(1, 10), max_value=5)
                    ),
                )
                for i in range(n)
            ]
        )
        edges = []
        for j in range(1, n):
            for i in range(j):
                if data.draw(st.booleans()):
                    edges.append((f"C{i}", f"C{j}"))
        cm = CostModel(ExecutionGraph(app, edges))
        assert cm.period_lower_bound(CommModel.OVERLAP) <= cm.period_lower_bound(
            CommModel.INORDER
        )

    def test_message_size_unknown_edge_rejected(self):
        app = make_application([("a", 1, 1), ("b", 1, 1)])
        cm = CostModel(ExecutionGraph(app, []))
        with pytest.raises(KeyError):
            cm.message_size("a", "b")

    def test_latency_bound_single_service(self):
        app = make_application([("a", 3, Fraction(1, 2))])
        cm = CostModel(ExecutionGraph(app, []))
        # in(1) + comp(3) + out(1/2)
        assert cm.latency_lower_bound() == Fraction(9, 2)
