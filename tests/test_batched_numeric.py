"""Differential harness for the batched numeric layer (``repro.core.batched``).

The batched kernels carry a hard contract: every value a
:class:`~repro.core.ForestBatch` or :class:`~repro.core.MappingBatch` row
returns is the **identical IEEE-754 double** the scalar
:class:`~repro.core.FloatCosts` computes for the same candidate — same
fold orders, operation for operation.  Certified searches rely on this to
swap the scalar float gate for a batched one without perturbing a single
prune/keep decision, which is what keeps their results bit-for-bit equal
to the all-``Fraction`` tier.

This module sweeps well over 200 seeded random instances — unit and
heterogeneous platforms, injective and shared mappings, weighted shared
aggregation — asserting float equality with ``==``, then checks the
certified batched searches end to end against the exact tier, including
adversarial near-ties ~2^-60 below float resolution at the CERT_EPS
boundary.
"""

import random
from fractions import Fraction as F

import numpy as np
import pytest

from repro import make_application
from repro.core import (
    CommModel,
    Exactness,
    ExecutionGraph,
    FloatCosts,
    ForestBatch,
    Mapping,
    MappingBatch,
    iter_forest_rows,
)
from repro.optimize.evaluation import Effort, make_forest_period_batch
from repro.optimize.exhaustive import iter_forests, scan_best, scan_best_forests_batched
from repro.optimize.incremental import IncrementalSharedCosts
from repro.optimize.placement import (
    clear_placement_memo,
    iter_mappings,
    iter_shared_mappings,
    optimize_mapping,
    optimize_shared_mapping,
)
from repro.planner import EvaluationCache, solve
from repro.workloads.generators import (
    random_application,
    random_execution_graph,
    random_platform,
)

MODELS = [CommModel.OVERLAP, CommModel.INORDER, CommModel.OUTORDER]


def _shared_mapping(names, platform, rng):
    return Mapping.shared(
        {name: platform.names[rng.randrange(len(platform))] for name in names}
    )


class TestForestBatchMatchesScalar:
    """ForestBatch rows == per-candidate FloatCosts scalars, exactly."""

    def _assert_rows_match(self, app, model, platform, mapping, rows, seed):
        batch = ForestBatch(app, model, platform, mapping)
        valid, periods = batch.periods(rows)
        for k in range(rows.shape[0]):
            if not valid[k]:
                continue
            graph = batch.decode(rows[k])
            scalar = FloatCosts(graph, platform, mapping).period_lower_bound(model)
            assert periods[k] == scalar, (seed, model, rows[k])

    @pytest.mark.parametrize("config", ["unit", "het", "shared"])
    def test_sweep(self, config, forest_graph):
        # 40 instances x 3 configs x all three models = 360 checked
        # instance-configurations, each over every forest of the space
        # (n <= 3) or 25 random forests (larger n).
        for seed in range(40):
            rng = random.Random(1000 * hash(config) % 97 + seed)
            n = rng.randrange(2, 6)
            app = random_application(
                n, seed=seed, filter_fraction=rng.uniform(0.2, 0.9)
            )
            if config == "unit":
                platform, mapping = None, None
            else:
                platform = random_platform(n + 1, seed=seed + 3, link_density=0.5)
                if config == "het":
                    order = rng.sample(range(len(platform)), n)
                    mapping = Mapping(
                        {
                            svc: platform.names[order[i]]
                            for i, svc in enumerate(app.names)
                        }
                    )
                else:
                    mapping = _shared_mapping(app.names, platform, rng)
            if n <= 3:
                rows = np.concatenate(
                    [r for r, _ in iter_forest_rows(n, chunk=256)]
                )
            else:
                batch = ForestBatch(app, CommModel.OVERLAP, platform, mapping)
                rows = np.stack(
                    [batch.encode(forest_graph(app, rng)) for _ in range(25)]
                )
            model = MODELS[seed % 3]
            self._assert_rows_match(app, model, platform, mapping, rows, seed)

    def test_iter_forest_rows_is_iter_forests_order(self):
        # Valid rows decode to exactly the scalar enumerator's sequence.
        for n, seed in [(2, 0), (3, 1), (4, 2)]:
            app = random_application(n, seed=seed)
            batch = ForestBatch(app, CommModel.OVERLAP)
            decoded = []
            for rows, _base in iter_forest_rows(n, chunk=64):
                valid, _ = batch.periods(rows)
                for k in range(rows.shape[0]):
                    if valid[k]:
                        decoded.append(batch.decode(rows[k]).edges)
            expected = [g.edges for g in iter_forests(app)]
            assert decoded == expected, (n, seed)

    def test_cycle_rows_flagged_invalid(self):
        app = random_application(3, seed=7)
        batch = ForestBatch(app, CommModel.OVERLAP)
        rows = np.array([
            [-1, -1, -1],   # empty forest
            [1, 0, -1],     # 2-cycle
            [1, 2, 0],      # 3-cycle
            [2, 2, -1],     # valid: both under the last service
            [0, -1, -1],    # self-loop
        ])
        valid, _ = batch.periods(rows)
        assert valid.tolist() == [True, False, False, True, False]


class TestMappingBatchMatchesScalar:
    """MappingBatch rows == per-candidate FloatCosts scalars, exactly."""

    def test_injective_period_and_latency_sweep(self, het_instance):
        # 60 instances, every injective mapping of each (both kinds where
        # defined) — several thousand row/scalar comparisons.
        for seed in range(60):
            graph, platform, _ = het_instance(seed, max_services=4)
            mappings = list(iter_mappings(graph.nodes, platform))
            for kind in ("period", "latency"):
                model = MODELS[seed % 3]
                batch = MappingBatch(graph, platform, kind=kind, model=model)
                rows = np.stack([batch.encode(m) for m in mappings])
                values = batch.values(rows)
                for k, m in enumerate(mappings):
                    fast = FloatCosts(graph, platform, m)
                    scalar = (
                        fast.period_lower_bound(model)
                        if kind == "period"
                        else fast.latency_lower_bound()
                    )
                    assert values[k] == scalar, (seed, kind, model, k)

    def test_shared_period_sweep(self):
        # 60 instances x full shared enumeration, with and without weights.
        for seed in range(60):
            rng = random.Random(seed)
            n = rng.randrange(2, 5)
            app = random_application(n, seed=seed + 200)
            graph = random_execution_graph(app, seed=seed + 201, density=0.4)
            platform = random_platform(
                rng.randrange(1, 4), seed=seed + 202, link_density=0.5
            )
            weights = (
                {name: F(rng.randrange(1, 5), rng.randrange(1, 4)) for name in app.names}
                if seed % 2
                else None
            )
            model = MODELS[seed % 3]
            batch = MappingBatch(
                graph, platform, kind="period", model=model,
                shared=True, weights=weights,
            )
            mappings = list(iter_shared_mappings(graph.nodes, platform))
            rows = np.stack([batch.encode(m) for m in mappings])
            values = batch.values(rows)
            for k, m in enumerate(mappings):
                scalar = FloatCosts(
                    graph, platform, m, weights=weights
                ).period_lower_bound(model)
                assert values[k] == scalar, (seed, model, k)

    def test_weighted_injective_row_aggregates_per_server(self):
        # Regression: a weighted query must price per-server aggregated
        # (weighted) load even when the row happens to be injective — the
        # scalar kernel once fell back to the unweighted per-node branch
        # there, disagreeing with the exact shared objective.
        for seed in range(10):
            rng = random.Random(seed)
            app = random_application(3, seed=seed + 400)
            graph = random_execution_graph(app, seed=seed + 401, density=0.5)
            platform = random_platform(4, seed=seed + 402, link_density=0.6)
            weights = {name: F(rng.randrange(2, 7), 3) for name in app.names}
            order = rng.sample(range(4), 3)
            mapping = Mapping.shared(
                {
                    svc: platform.names[order[i]]
                    for i, svc in enumerate(app.names)
                }
            )
            assert mapping.is_injective
            exact = IncrementalSharedCosts(
                graph, platform, mapping,
                model=CommModel.OVERLAP, weights=weights,
            ).value()
            scalar = FloatCosts(
                graph, platform, mapping, weights=weights
            ).period_lower_bound(CommModel.OVERLAP)
            assert abs(scalar - float(exact)) <= 1e-9 * float(exact), seed
            batch = MappingBatch(
                graph, platform, kind="period", model=CommModel.OVERLAP,
                shared=True, weights=weights,
            )
            assert batch.values(batch.encode(mapping)[None, :])[0] == scalar


class TestCertifiedBatchedSearchBitForBit:
    """Batched certified searches == the all-Fraction tier, end to end."""

    def test_exhaustive_forest_scan(self):
        for seed in range(25):
            app = random_application(random.Random(seed).randrange(2, 6), seed=seed)
            cache_e = EvaluationCache()
            cache_c = EvaluationCache()
            model = MODELS[seed % 3]
            exact_fn = cache_e.objective("period", model, Effort.EXACT)
            cert_fn = cache_c.objective(
                "period", model, Effort.EXACT, exactness=Exactness.CERTIFIED
            )
            ev, eg, ecount = scan_best(iter_forests(app), exact_fn)
            fb = make_forest_period_batch(app, model, Effort.EXACT, None, None)
            assert fb is not None or model is not CommModel.OVERLAP
            if fb is None:
                continue
            cv, cg, ccount = scan_best_forests_batched(app, cert_fn, fb)
            assert (cv, cg.edges, ccount) == (ev, eg.edges, ecount), (seed, model)

    def test_planner_solves_match_exact(self):
        # The full stack (facade -> registry -> batched scan / gated LS /
        # leaf-batched B&B) under certified == exact, values and graphs.
        for seed in range(12):
            app = random_application(5, seed=seed + 50)
            for method in ("exhaustive", "local-search", "branch-and-bound"):
                options = {"leaf_batch": True} if method == "branch-and-bound" else {}
                results = {}
                for exactness in ("exact", "certified"):
                    clear_placement_memo()
                    results[exactness] = solve(
                        app, method=method, schedule=False,
                        cache=EvaluationCache(), exactness=exactness, **options,
                    )
                assert results["certified"].value == results["exact"].value, (
                    seed, method,
                )
                assert (
                    results["certified"].graph.edges
                    == results["exact"].graph.edges
                ), (seed, method)

    def test_placement_searches_match_exact(self, het_instance):
        for seed in range(10):
            graph, platform, _ = het_instance(seed + 80, max_services=4)
            for kind, effort in (
                ("period", Effort.BOUND),
                ("latency", Effort.BOUND),
            ):
                outcomes = {}
                for exactness in (Exactness.EXACT, Exactness.CERTIFIED):
                    clear_placement_memo()
                    outcomes[exactness] = optimize_mapping(
                        graph, kind, CommModel.OVERLAP, effort, platform,
                        exactness=exactness,
                    )
                exact_v, exact_m = outcomes[Exactness.EXACT]
                cert_v, cert_m = outcomes[Exactness.CERTIFIED]
                assert (cert_v, cert_m.key()) == (exact_v, exact_m.key()), (
                    seed, kind,
                )
            clear_placement_memo()

    def test_shared_placement_matches_exact(self):
        for seed in range(10):
            rng = random.Random(seed)
            app = random_application(3, seed=seed + 300)
            graph = random_execution_graph(app, seed=seed + 301, density=0.4)
            platform = random_platform(2, seed=seed + 302, link_density=0.5)
            weights = (
                {name: F(rng.randrange(1, 4)) for name in app.names}
                if seed % 2
                else None
            )
            exact_v, exact_m = optimize_shared_mapping(
                graph, CommModel.OVERLAP, platform, weights=weights,
                exactness=Exactness.EXACT,
            )
            cert_v, cert_m = optimize_shared_mapping(
                graph, CommModel.OVERLAP, platform, weights=weights,
                exactness=Exactness.CERTIFIED,
            )
            assert (cert_v, cert_m.key()) == (exact_v, exact_m.key()), seed


class TestBatchedNearTies:
    """Adversarial ~2^-60 near-ties at the CERT_EPS boundary stay exact."""

    TINY = F(1, 2 ** 60)

    def _near_tie_app(self):
        # Two heavy services whose costs differ by 4 * 2^-60: every forest
        # pairing ties dead-even on the float tier; the exact optimum puts
        # the filter ahead of both and its value's tiny component is
        # invisible to any float comparison.
        return make_application([
            ("A", 4, 1),
            ("B", 4 + 4 * self.TINY, 1),
            ("F", "1/4", "1/2"),
        ])

    def test_batched_scan_certifies_true_optimum(self):
        app = self._near_tie_app()
        exact_fn = EvaluationCache().objective("period", CommModel.OVERLAP)
        ev, eg, ecount = scan_best(iter_forests(app), exact_fn)
        cert_fn = EvaluationCache().objective(
            "period", CommModel.OVERLAP, exactness=Exactness.CERTIFIED
        )
        fb = make_forest_period_batch(app, CommModel.OVERLAP, Effort.EXACT, None, None)
        assert fb is not None
        cv, cg, ccount = scan_best_forests_batched(app, cert_fn, fb)
        assert (cv, cg.edges, ccount) == (ev, eg.edges, ecount)
        assert cv.denominator > 1 or cv != F(float(cv))  # genuinely exact

    def test_batched_rows_collapse_to_equal_floats(self):
        # The two near-tied candidates really are indistinguishable on the
        # float tier — the scan above had to arbitrate exactly.
        app = self._near_tie_app()
        batch = ForestBatch(app, CommModel.OVERLAP)
        g1 = ExecutionGraph.from_parents(app, {"F": None, "A": "F", "B": "F"})
        g2 = ExecutionGraph.from_parents(app, {"F": None, "B": "F", "A": "F"})
        rows = np.stack([batch.encode(g1), batch.encode(g2)])
        _, periods = batch.periods(rows)
        assert periods[0] == periods[1]

    def test_perturbed_placement_near_tie(self):
        # Two servers whose speeds differ by 2^-60 relative: float pricing
        # ties, the certified placement must still pick the exact winner.
        from repro.core import Platform

        app = make_application([("A", 1, 1), ("B", 1, 1)])
        graph = ExecutionGraph.from_parents(app, {"A": None, "B": "A"})
        platform = Platform.of(speeds=[F(1), 1 + self.TINY, F(1, 2)])
        for kind in ("period",):
            clear_placement_memo()
            exact = optimize_mapping(
                graph, kind, CommModel.OVERLAP, Effort.BOUND, platform,
                exactness=Exactness.EXACT,
            )
            clear_placement_memo()
            cert = optimize_mapping(
                graph, kind, CommModel.OVERLAP, Effort.BOUND, platform,
                exactness=Exactness.CERTIFIED,
            )
            clear_placement_memo()
            assert (cert[0], cert[1].key()) == (exact[0], exact[1].key())
