"""Unit tests for repro.core.graph (ExecutionGraph)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import CycleError, ExecutionGraph, PrecedenceError, make_application


@pytest.fixture
def app5():
    return make_application([(f"C{i}", 4, 1) for i in range(1, 6)])


@pytest.fixture
def fig1_graph(app5):
    """The execution graph of the paper's Section 2.3 example (Figure 1)."""
    return ExecutionGraph(
        app5,
        [("C1", "C2"), ("C1", "C4"), ("C2", "C3"), ("C3", "C5"), ("C4", "C5")],
    )


class TestConstruction:
    def test_unknown_node_rejected(self, app5):
        with pytest.raises(KeyError):
            ExecutionGraph(app5, [("C1", "Z")])

    def test_self_loop_rejected(self, app5):
        with pytest.raises(CycleError):
            ExecutionGraph(app5, [("C1", "C1")])

    def test_cycle_rejected(self, app5):
        with pytest.raises(CycleError):
            ExecutionGraph(app5, [("C1", "C2"), ("C2", "C3"), ("C3", "C1")])

    def test_precedence_enforced(self):
        app = make_application(
            [("a", 1, 1), ("b", 1, 1)], precedence=[("a", "b")]
        )
        with pytest.raises(PrecedenceError):
            ExecutionGraph(app, [])
        g = ExecutionGraph(app, [("a", "b")])
        assert g.edges == frozenset({("a", "b")})

    def test_precedence_by_transitivity(self):
        app = make_application(
            [("a", 1, 1), ("b", 1, 1), ("c", 1, 1)], precedence=[("a", "c")]
        )
        # a -> b -> c satisfies (a, c) transitively
        g = ExecutionGraph(app, [("a", "b"), ("b", "c")])
        assert "a" in g.ancestors("c")

    def test_chain_constructor(self, app5):
        g = ExecutionGraph.chain(app5, ["C3", "C1", "C2", "C5", "C4"])
        assert g.is_chain
        assert g.topological_order == ("C3", "C1", "C2", "C5", "C4")

    def test_chain_requires_permutation(self, app5):
        with pytest.raises(ValueError):
            ExecutionGraph.chain(app5, ["C1", "C2"])

    def test_from_parents(self, app5):
        g = ExecutionGraph.from_parents(
            app5, {"C2": "C1", "C3": "C1", "C4": None, "C5": "C4", "C1": None}
        )
        assert g.is_forest and not g.is_tree
        assert set(g.entry_nodes) == {"C1", "C4"}

    def test_empty(self, app5):
        g = ExecutionGraph.empty(app5)
        assert g.edges == frozenset()
        assert set(g.entry_nodes) == set(app5.names)
        assert set(g.exit_nodes) == set(app5.names)


class TestStructure:
    def test_fig1_neighbours(self, fig1_graph):
        g = fig1_graph
        assert set(g.successors("C1")) == {"C2", "C4"}
        assert set(g.predecessors("C5")) == {"C3", "C4"}
        assert g.entry_nodes == ("C1",)
        assert g.exit_nodes == ("C5",)

    def test_fig1_ancestors(self, fig1_graph):
        assert fig1_graph.ancestors("C5") == frozenset({"C1", "C2", "C3", "C4"})
        assert fig1_graph.ancestors("C1") == frozenset()

    def test_fig1_descendants(self, fig1_graph):
        assert fig1_graph.descendants("C1") == frozenset({"C2", "C3", "C4", "C5"})
        assert fig1_graph.descendants("C5") == frozenset()

    def test_fig1_not_forest(self, fig1_graph):
        assert not fig1_graph.is_forest
        assert not fig1_graph.is_chain

    def test_fig1_depth(self, fig1_graph):
        assert fig1_graph.depth("C1") == 0
        assert fig1_graph.depth("C5") == 3  # via C2, C3

    def test_topological_order_consistent(self, fig1_graph):
        topo = fig1_graph.topological_order
        pos = {n: i for i, n in enumerate(topo)}
        for a, b in fig1_graph.edges:
            assert pos[a] < pos[b]

    def test_components(self, app5):
        g = ExecutionGraph(app5, [("C1", "C2"), ("C3", "C4")])
        comps = {frozenset(c) for c in g.components()}
        assert comps == {
            frozenset({"C1", "C2"}),
            frozenset({"C3", "C4"}),
            frozenset({"C5"}),
        }

    def test_with_without_edges(self, app5):
        g = ExecutionGraph(app5, [("C1", "C2")])
        g2 = g.with_edges([("C2", "C3")])
        assert ("C2", "C3") in g2.edges
        g3 = g2.without_edges([("C1", "C2")])
        assert ("C1", "C2") not in g3.edges

    def test_equality_and_hash(self, app5):
        g1 = ExecutionGraph(app5, [("C1", "C2")])
        g2 = ExecutionGraph(app5, [("C1", "C2")])
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != ExecutionGraph(app5, [])


@st.composite
def random_dag_edges(draw, n_nodes):
    """Random DAG edges over C0..C{n-1} respecting index order."""
    edges = []
    for j in range(1, n_nodes):
        for i in range(j):
            if draw(st.booleans()):
                edges.append((f"C{i}", f"C{j}"))
    return edges


class TestProperties:
    @given(st.data())
    def test_ancestors_closed_under_edges(self, data):
        n = data.draw(st.integers(2, 7))
        app = make_application([(f"C{i}", 1, 1) for i in range(n)])
        edges = data.draw(random_dag_edges(n))
        g = ExecutionGraph(app, edges)
        for a, b in g.edges:
            assert a in g.ancestors(b)
            assert g.ancestors(a) <= g.ancestors(b)

    @given(st.data())
    def test_forest_iff_indegree_le_one(self, data):
        n = data.draw(st.integers(2, 7))
        app = make_application([(f"C{i}", 1, 1) for i in range(n)])
        edges = data.draw(random_dag_edges(n))
        g = ExecutionGraph(app, edges)
        indeg_ok = all(len(g.predecessors(v)) <= 1 for v in g.nodes)
        assert g.is_forest == indeg_ok

    @given(st.data())
    def test_descendants_mirror_ancestors(self, data):
        n = data.draw(st.integers(2, 6))
        app = make_application([(f"C{i}", 1, 1) for i in range(n)])
        edges = data.draw(random_dag_edges(n))
        g = ExecutionGraph(app, edges)
        for u in g.nodes:
            for v in g.nodes:
                assert (u in g.ancestors(v)) == (v in g.descendants(u))
