"""Shared seeded random-instance factories for the test suite.

Several suites (the Theorem-1 platform property sweep, the
branch-and-bound exactness sweeps, the incremental-delta parity sweeps,
and the concurrent shared-server invariants) need the same shape of
random instance: a seeded application, an execution graph over it, a
heterogeneous platform, and a service-to-server mapping.  The factories
live here once — deterministic given their seed, exact Fraction-valued
throughout — and are exposed as factory *fixtures* so test modules don't
import each other.
"""

import numpy as np
import pytest

from repro.core import ExecutionGraph, Mapping
from repro.workloads.generators import (
    random_application,
    random_execution_graph,
    random_platform,
)


def random_het_instance(
    seed, *, max_services=6, spare_servers=2, link_density=0.5
):
    """``(graph, platform, mapping)`` — the canonical heterogeneous instance.

    A random DAG over 2..*max_services* services, a random heterogeneous
    platform with up to *spare_servers* idle servers, and a random
    injective service-to-server assignment.
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, max_services + 1))
    app = random_application(
        n, seed=seed, filter_fraction=float(rng.uniform(0.2, 0.9))
    )
    graph = random_execution_graph(
        app, seed=seed + 1, density=float(rng.uniform(0.1, 0.7))
    )
    n_servers = n + int(rng.integers(0, spare_servers + 1))
    platform = random_platform(n_servers, seed=seed + 2, link_density=link_density)
    order = rng.permutation(n_servers)[:n]
    mapping = Mapping(
        {svc: platform.names[order[i]] for i, svc in enumerate(graph.nodes)}
    )
    return graph, platform, mapping


def random_forest_graph(app, rng):
    """A random forest over *app*, driven by a ``random.Random`` instance."""
    names = list(app.names)
    order = names[:]
    rng.shuffle(order)
    parents, placed = {}, []
    for name in order:
        parents[name] = rng.choice([None] + placed) if placed else None
        placed.append(name)
    return ExecutionGraph.from_parents(app, parents)


def positional_mapping(app, platform):
    """The deterministic positional injective mapping used by het sweeps."""
    return Mapping(dict(zip(app.names, platform.names)))


def random_multi_instance(seed, *, max_apps=3, max_services=4):
    """``(multi, platform, mapping)`` — a random concurrent instance.

    2..*max_apps* applications with random DAGs, a random heterogeneous
    platform whose server count ranges from 1 (everything shared) to
    ``total + 1`` (room to spread out), and a uniformly random *shared*
    assignment of the combined services.
    """
    from repro.concurrent import MultiApplication

    rng = np.random.default_rng(seed + 10_000)
    k = int(rng.integers(2, max_apps + 1))
    members = []
    for a in range(k):
        n = int(rng.integers(2, max_services + 1))
        app = random_application(
            n, seed=seed * 31 + a, filter_fraction=float(rng.uniform(0.3, 0.9))
        )
        graph = random_execution_graph(
            app, seed=seed * 31 + a + 7, density=float(rng.uniform(0.1, 0.6))
        )
        members.append((f"app{a}", graph))
    multi = MultiApplication(members)
    total = multi.total_services
    m = int(rng.integers(1, total + 2))
    platform = random_platform(m, seed=seed + 5, link_density=0.4)
    assignment = {
        svc: platform.names[int(rng.integers(0, m))]
        for svc in multi.combined_graph.nodes
    }
    return multi, platform, Mapping.shared(assignment)


@pytest.fixture
def het_instance():
    """Factory fixture: ``seed -> (graph, platform, mapping)``."""
    return random_het_instance


@pytest.fixture
def forest_graph():
    """Factory fixture: ``(app, random.Random) -> forest ExecutionGraph``."""
    return random_forest_graph


@pytest.fixture
def pinned_mapping():
    """Factory fixture: ``(app, platform) -> positional injective Mapping``."""
    return positional_mapping


@pytest.fixture
def multi_instance():
    """Factory fixture: ``seed -> (multi, platform, shared mapping)``."""
    return random_multi_instance


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "smoke: end-to-end daemon subprocess tests (make serve-smoke)",
    )
