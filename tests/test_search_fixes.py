"""Regression tests for the search hot-path fixes.

1. ``clear_default_cache`` also clears the module-level placement memo.
2. ``local_search_forest`` resumes its scan after an accepted move
   (instead of restarting at the first service) and only swallows the
   cycle error when probing candidate parents.
3. ``solve(graph, method="auto", schedule=False)`` reads the memoized
   objective instead of running the placement optimiser and building an
   operation list it would immediately discard.
"""

from fractions import Fraction

import pytest

from repro.core import CommModel, CostModel, ExecutionGraph, make_application
from repro.optimize import (
    Effort,
    clear_placement_memo,
    local_search_forest,
    make_period_objective,
    optimize_mapping,
    placement_memo_size,
)
from repro.planner import EvaluationCache, clear_default_cache, solve
from repro.workloads import fig1_example
from repro.workloads.generators import random_application, random_platform

F = Fraction


# ---------------------------------------------------------------------------
# 1. Placement memo lifecycle
# ---------------------------------------------------------------------------

class TestPlacementMemoClear:
    def test_clear_default_cache_clears_placement_memo(self):
        clear_default_cache()
        assert placement_memo_size() == 0
        app = random_application(3, seed=1)
        platform = random_platform(4, seed=1)
        optimize_mapping(
            ExecutionGraph.empty(app), "period", CommModel.OVERLAP,
            Effort.HEURISTIC, platform,
        )
        assert placement_memo_size() > 0
        clear_default_cache()
        assert placement_memo_size() == 0

    def test_clear_placement_memo_direct(self):
        app = random_application(3, seed=2)
        platform = random_platform(4, seed=2)
        optimize_mapping(
            ExecutionGraph.empty(app), "period", CommModel.OVERLAP,
            Effort.HEURISTIC, platform,
        )
        assert placement_memo_size() > 0
        clear_placement_memo()
        assert placement_memo_size() == 0


# ---------------------------------------------------------------------------
# 2. Local-search scan behaviour and error handling
# ---------------------------------------------------------------------------

def _naive_restart_search(graph, objective, max_moves=200):
    """The pre-fix loop: restart the scan at the first service after every
    accepted move (kept here as the comparison baseline)."""
    app = graph.application
    parents = {
        n: (graph.predecessors(n)[0] if graph.predecessors(n) else None)
        for n in graph.nodes
    }
    current = objective(graph)
    moves, improved = 0, True
    while improved and moves < max_moves:
        improved = False
        for node in app.names:
            for candidate in [None] + [p for p in app.names if p != node]:
                if candidate == parents[node]:
                    continue
                trial = dict(parents)
                trial[node] = candidate
                try:
                    trial_graph = ExecutionGraph.from_parents(app, trial)
                except Exception:
                    continue
                val = objective(trial_graph)
                if val < current:
                    parents, current = trial, val
                    moves += 1
                    improved = True
                    break
            if improved:
                break
    return current, ExecutionGraph.from_parents(app, parents)


class TestScanResume:
    def test_scan_continues_after_accepted_move(self):
        # Crafted so no move on A improves, the first accepted move is on
        # B (position 1), and C still has candidates to probe.  The fixed
        # scan must probe C next; the old loop restarted at A.
        app = make_application([("A", 2, 1), ("B", 8, 1), ("C", 1, "1/2")])
        objective = make_period_objective(CommModel.OVERLAP)
        probes = []
        state = {
            "parents": {n: None for n in app.names},
            "value": objective(ExecutionGraph.empty(app)),
        }

        def tracking(graph):
            trial = {
                n: (graph.predecessors(n)[0] if graph.predecessors(n) else None)
                for n in graph.nodes
            }
            changed = [
                n for n in app.names if trial[n] != state["parents"][n]
            ]
            value = objective(graph)
            if len(changed) == 1:  # a probe, not the final reconstruction
                accepted = value < state["value"]
                probes.append((changed[0], accepted))
                if accepted:  # mirror first-improvement acceptance
                    state["parents"], state["value"] = trial, value
            return value

        value, graph = local_search_forest(
            ExecutionGraph.empty(app), tracking
        )
        assert value == F(4) and sorted(graph.edges) == [("C", "B")]
        accepted_at = [i for i, (_, ok) in enumerate(probes) if ok]
        assert probes[accepted_at[0]][0] == "B"
        # Regression: the probe right after the accepted move is on C (the
        # next service in scan order), not a restart at A.
        assert probes[accepted_at[0] + 1][0] == "C"

    def test_same_local_optimum_quality_as_restart_scan(self):
        for seed in (3, 9, 21):
            app = random_application(8, seed=seed, filter_fraction=0.8)
            start = ExecutionGraph.empty(app)
            objective = make_period_objective(CommModel.OVERLAP)
            naive_val, _ = _naive_restart_search(start, objective)
            fixed_val, fixed_graph = local_search_forest(start, objective)
            # Different trajectories, but both must end in a local optimum
            # no worse than the empty start.
            assert fixed_val <= objective(start)
            assert fixed_graph.is_forest

    def test_terminates_at_local_optimum(self):
        # After the search stops, no single reparent can improve.
        app = random_application(5, seed=13)
        objective = make_period_objective(CommModel.OVERLAP)
        value, graph = local_search_forest(
            ExecutionGraph.empty(app), objective
        )
        parents = {
            n: (graph.predecessors(n)[0] if graph.predecessors(n) else None)
            for n in graph.nodes
        }
        for node in app.names:
            for candidate in [None] + [p for p in app.names if p != node]:
                if candidate == parents[node]:
                    continue
                trial = dict(parents)
                trial[node] = candidate
                try:
                    trial_graph = ExecutionGraph.from_parents(app, trial)
                except ValueError:
                    continue
                assert objective(trial_graph) >= value


class TestNarrowedExceptionGuard:
    def test_cycle_candidates_are_skipped(self):
        app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        value, graph = local_search_forest(
            ExecutionGraph.empty(app),
            make_period_objective(CommModel.OVERLAP),
        )
        assert value == F(4) and sorted(graph.edges) == [("A", "B")]

    def test_unexpected_errors_propagate(self, monkeypatch):
        # The old bare ``except Exception`` silently ate *any* failure when
        # probing a candidate; only the cycle error may be swallowed now.
        import repro.optimize.local_search as ls

        app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        original = ls.ExecutionGraph.from_parents.__func__
        calls = {"n": 0}

        def flaky(cls, application, parents):
            calls["n"] += 1
            if calls["n"] == 2:  # first trial construction blows up
                raise RuntimeError("storage layer fell over")
            return original(cls, application, parents)

        monkeypatch.setattr(
            ls.ExecutionGraph, "from_parents", classmethod(flaky)
        )
        with pytest.raises(RuntimeError, match="storage layer"):
            local_search_forest(
                ExecutionGraph.empty(app),
                make_period_objective(CommModel.OVERLAP),
            )


# ---------------------------------------------------------------------------
# 3. Fixed-graph auto solves without a schedule
# ---------------------------------------------------------------------------

class TestNoScheduleFastPath:
    def test_no_placement_and_no_plan_on_unit_platform(self, monkeypatch):
        import repro.optimize.placement as placement

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("placement optimiser must not run")

        monkeypatch.setattr(placement, "optimize_mapping", boom)
        graph = fig1_example().graph
        result = solve(graph, objective="period", model="overlap",
                       schedule=False, cache=EvaluationCache())
        assert result.plan is None
        assert result.method == "schedule"
        assert result.value == 4

    def test_value_matches_scheduled_value(self):
        graph = fig1_example().graph
        for objective in ("period", "latency"):
            for model in CommModel:
                fast = solve(graph, objective=objective, model=model,
                             schedule=False, cache=EvaluationCache())
                full = solve(graph, objective=objective, model=model,
                             schedule=True, cache=EvaluationCache())
                assert fast.value == full.value, (objective, model)
                assert fast.plan is None and full.plan is not None

    def test_evaluations_are_accounted(self):
        graph = fig1_example().graph
        cache = EvaluationCache()
        first = solve(graph, model="inorder", schedule=False, cache=cache)
        assert first.stats.evaluations > 0
        again = solve(graph, model="inorder", schedule=False, cache=cache)
        assert again.stats.evaluations == 0
        assert again.stats.cache_hits > 0
        assert again.value == first.value

    def test_het_platform_value_consistent(self):
        # On a non-unit platform the no-schedule value must equal the
        # with-schedule value (both optimise the placement through the
        # same memoized objective).
        app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        graph = ExecutionGraph(app, [("A", "B")])
        fast = solve(graph, model="overlap", platform="demo2",
                     schedule=False, cache=EvaluationCache())
        full = solve(graph, model="overlap", platform="demo2",
                     schedule=True, cache=EvaluationCache())
        assert fast.value == full.value
        assert fast.plan is None
        # The winning placement is still reported (resolved from the
        # placement memo the objective just populated, not re-searched).
        assert fast.mapping == full.mapping
        assert fast.mapping is not None
