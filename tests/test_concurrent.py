"""Concurrent multi-application mapping: shared servers end to end.

Covers the tentpole acceptance criteria:

* shared (non-injective) :class:`~repro.core.Mapping` semantics and the
  per-server :class:`~repro.core.CostModel` aggregation;
* the evaluation-cache fingerprint fix — two shared mappings co-locating
  *different* service pairs on the same platform must not collide;
* ``solve_concurrent``: per-application periods match the single-app
  ``solve`` when servers are not shared, and a strictly feasible
  shared-server plan comes back when the platform has fewer servers than
  there are services;
* the ``python -m repro concurrent`` CLI.
"""

import json
from fractions import Fraction

import pytest

from repro import ExecutionGraph, Mapping, Platform, make_application
from repro.concurrent import ConcurrentApp, ConcurrentCosts, MultiApplication
from repro.core import CommModel, CostModel
from repro.optimize import (
    Effort,
    IncrementalSharedCosts,
    greedy_shared_mapping,
    optimize_shared_mapping,
    shared_space_size,
)
from repro.planner import (
    EvaluationCache,
    evaluation_key,
    load_concurrent_workload,
    solve,
    solve_concurrent,
)
from repro.workloads import fig1_example
from repro.__main__ import main as cli_main

F = Fraction


# ---------------------------------------------------------------------------
# Shared mappings and per-server cost aggregation
# ---------------------------------------------------------------------------

class TestSharedMapping:
    def test_plain_constructor_still_rejects_colocation(self):
        with pytest.raises(ValueError, match="injective"):
            Mapping({"A": "S1", "B": "S1"})

    def test_shared_allows_and_reports_colocation(self):
        m = Mapping.shared({"A": "S1", "B": "S1", "C": "S2"})
        assert not m.is_injective
        assert m.services_on("S1") == ("A", "B")
        assert m.used_servers() == ("S1", "S2")
        # An injective assignment built through shared() reports injective.
        assert Mapping.shared({"A": "S1", "B": "S2"}).is_injective

    def test_single_app_entry_points_reject_shared_mappings(self):
        # solve() and the Theorem-1 scheduler assume one service per
        # server; shared mappings must be routed to solve_concurrent.
        from repro.scheduling.overlap import schedule_period_overlap

        app = make_application([("A", 1, 1), ("B", 1, 1)])
        graph = ExecutionGraph.empty(app)
        platform = Platform.homogeneous(2)
        shared = Mapping.shared({"A": "S1", "B": "S1"})
        with pytest.raises(ValueError, match="solve_concurrent"):
            solve(graph, platform=platform, mapping=shared)
        with pytest.raises(ValueError, match="one server per service"):
            schedule_period_overlap(graph, platform=platform, mapping=shared)

    def test_reassigned_preserves_shared_capability(self):
        m = Mapping.shared({"A": "S1", "B": "S2"})
        moved = m.reassigned("B", "S1")
        assert not moved.is_injective
        # A plain mapping still refuses to become non-injective.
        plain = Mapping({"A": "S1", "B": "S2"})
        with pytest.raises(ValueError):
            plain.reassigned("B", "S1")


class TestSharedCostModel:
    def _chain(self):
        app = make_application([("A", 1, "1/2"), ("B", 4, 1)])
        return ExecutionGraph.chain(app, ["A", "B"])

    def test_intra_server_edge_costs_zero(self):
        graph = self._chain()
        platform = Platform.homogeneous(2)
        together = CostModel(graph, platform, Mapping.shared({"A": "S1", "B": "S1"}))
        split = CostModel(graph, platform, Mapping.shared({"A": "S1", "B": "S2"}))
        assert together.comm_time("A", "B") == 0
        assert split.comm_time("A", "B") == F(1, 2)
        # Sizes stay platform-independent; only the *time* is zero.
        assert together.message_size("A", "B") == F(1, 2)

    def test_server_aggregates_and_period(self):
        graph = self._chain()
        platform = Platform.homogeneous(2)
        costs = CostModel(graph, platform, Mapping.shared({"A": "S1", "B": "S1"}))
        # cin: 1 (input to A) + 0 (intra edge); ccomp: 1 + 2; cout: 0 + 1/2.
        assert costs.server_cin("S1") == 1
        assert costs.server_ccomp("S1") == 3
        assert costs.server_cout("S1") == F(1, 2)
        assert costs.server_cexec("S1", CommModel.OVERLAP) == 3
        assert costs.period_lower_bound(CommModel.OVERLAP) == 3
        # One-port: the server serialises everything.
        assert costs.server_cexec("S1", CommModel.INORDER) == F(9, 2)

    def test_injective_mapping_values_unchanged(self):
        # The aggregation is a strict generalisation: an injective mapping
        # reproduces the per-service formulation bit for bit.
        graph = fig1_example().graph
        platform = Platform.of(speeds=[1, 2, 1, 4, 2])
        mapping = Mapping(dict(zip(graph.nodes, platform.names)))
        shared_capable = Mapping.shared(dict(mapping.items()))
        a = CostModel(graph, platform, mapping)
        b = CostModel(graph, platform, shared_capable)
        for model in CommModel:
            assert a.period_lower_bound(model) == b.period_lower_bound(model)
        for node in graph.nodes:
            assert a.cin(node) == b.cin(node)
            assert a.ccomp(node) == b.ccomp(node)
            assert a.cout(node) == b.cout(node)


# ---------------------------------------------------------------------------
# Satellite fix: cache keys must fingerprint the many-to-one mapping
# ---------------------------------------------------------------------------

class TestSharedFingerprintRegression:
    """Same shape of bug as the PR 2 platform-fingerprint collisions.

    On a unit platform every *injective* mapping is equivalent, so they
    deliberately share the ``"unit"`` sentinel.  A shared mapping is not:
    which services are co-located changes the aggregated value.  Before
    the fix both shared mappings below collapsed to ``"unit"`` and the
    second query was (wrongly) answered from the first one's entry.
    """

    def _instance(self):
        app = make_application([("A", 1, "1/2"), ("B", 4, 1), ("C", 6, 1)])
        graph = ExecutionGraph.chain(app, ["A", "B", "C"])
        platform = Platform.homogeneous(2)
        ab = Mapping.shared({"A": "S1", "B": "S1", "C": "S2"})
        bc = Mapping.shared({"A": "S1", "B": "S2", "C": "S2"})
        return graph, platform, ab, bc

    def test_keys_differ_for_different_colocations(self):
        graph, platform, ab, bc = self._instance()
        key_ab = evaluation_key(
            "period", graph, CommModel.OVERLAP, Effort.EXACT, platform, ab
        )
        key_bc = evaluation_key(
            "period", graph, CommModel.OVERLAP, Effort.EXACT, platform, bc
        )
        assert key_ab != key_bc

    def test_shared_does_not_collide_with_injective_sentinel(self):
        graph, platform, ab, _ = self._instance()
        injective = evaluation_key(
            "period", graph, CommModel.OVERLAP, Effort.EXACT, platform, None
        )
        shared = evaluation_key(
            "period", graph, CommModel.OVERLAP, Effort.EXACT, platform, ab
        )
        assert injective != shared

    def test_cache_returns_distinct_values(self):
        # End-to-end: the two co-locations have genuinely different
        # aggregated periods, and both must be computed (two misses).
        graph, platform, ab, bc = self._instance()
        cache = EvaluationCache()
        v_ab = cache.objective(
            "period", CommModel.OVERLAP, Effort.EXACT, platform, ab
        )(graph)
        v_bc = cache.objective(
            "period", CommModel.OVERLAP, Effort.EXACT, platform, bc
        )(graph)
        # ab together: S1 ccomp 1+2=3, S2: cin 1/2, ccomp 3, cout 1/2 -> 3
        # bc together: S1: max(1, 1, 1/2) = 1... S2: ccomp 2+3=5 -> 5
        assert v_ab == CostModel(graph, platform, ab).period_lower_bound(
            CommModel.OVERLAP
        )
        assert v_bc == CostModel(graph, platform, bc).period_lower_bound(
            CommModel.OVERLAP
        )
        assert v_ab != v_bc
        assert cache.misses == 2 and cache.hits == 0


# ---------------------------------------------------------------------------
# MultiApplication container
# ---------------------------------------------------------------------------

class TestMultiApplication:
    def test_combined_graph_is_disjoint_union(self):
        inst = fig1_example()
        multi = MultiApplication([("x", inst.graph), ("y", inst.graph)])
        assert multi.total_services == 10
        combined = multi.combined_graph
        assert len(combined.edges) == 2 * len(inst.graph.edges)
        # No cross-application edges: every edge stays within one owner.
        for a, b in combined.edges:
            assert multi.owner(a) == multi.owner(b)
        assert multi.local_name("x.C1") == "C1"

    def test_duplicate_and_dotted_names_rejected(self):
        g = ExecutionGraph.empty(make_application([("X", 1, 1)]))
        with pytest.raises(ValueError, match="duplicate"):
            MultiApplication([("a", g), ("a", g)])
        with pytest.raises(ValueError, match="must not contain"):
            ConcurrentApp("a.b", g)

    def test_targets_and_weights(self):
        g = ExecutionGraph.empty(make_application([("X", 2, 1)]))
        multi = MultiApplication(
            [ConcurrentApp("a", g, F(4)), ConcurrentApp("b", g, F(2))]
        )
        weights = multi.weights()
        assert weights == {"a.X": F(1, 4), "b.X": F(1, 2)}
        assert MultiApplication([("a", g)]).weights() is None


# ---------------------------------------------------------------------------
# Shared placement search
# ---------------------------------------------------------------------------

class TestSharedPlacementSearch:
    def test_exhaustive_beats_or_equals_greedy(self):
        app = make_application(
            [("A", 6, 1), ("B", 2, 1), ("C", 2, 1), ("D", 2, 1)]
        )
        graph = ExecutionGraph.empty(app)
        platform = Platform.homogeneous(3)
        assert shared_space_size(4, 3) == 81
        value, mapping = optimize_shared_mapping(
            graph, CommModel.OVERLAP, platform
        )
        greedy = greedy_shared_mapping(graph, platform)
        greedy_value = CostModel(graph, platform, greedy).period_lower_bound(
            CommModel.OVERLAP
        )
        assert value <= greedy_value
        # Exhaustive is exact here: nothing below max total work / servers.
        assert value == F(6)
        assert not mapping.is_injective

    def test_colocation_beats_split_on_slow_link(self):
        # demo2-style: a 1/100 link makes the A->B message cost 50; the
        # optimal shared placement keeps the chain on one server.
        app = make_application([("A", 1, "1/2"), ("B", 4, 1)])
        graph = ExecutionGraph.chain(app, ["A", "B"])
        platform = Platform.of(speeds=[1, 1], links={("S1", "S2"): F(1, 100)})
        value, mapping = optimize_shared_mapping(
            graph, CommModel.OVERLAP, platform
        )
        assert mapping.server("A") == mapping.server("B")
        assert value == 3  # cin 1, ccomp 1 + 2, cout 1/2
        split = CostModel(
            graph, platform, Mapping.shared({"A": "S1", "B": "S2"})
        ).period_lower_bound(CommModel.OVERLAP)
        assert split == 50 and value < split

    def test_local_search_value_matches_full_recompute(self):
        wl = load_concurrent_workload("fig1+fig1")
        graph = wl.multi.combined_graph
        platform = Platform.homogeneous(3)
        assert shared_space_size(len(graph.nodes), 3) > 512  # LS path
        value, mapping = optimize_shared_mapping(
            graph, CommModel.OVERLAP, platform
        )
        assert value == CostModel(graph, platform, mapping).period_lower_bound(
            CommModel.OVERLAP
        )
        assert set(dict(mapping.items()).values()) <= {"S1", "S2", "S3"}

    def test_weighted_search_minimises_utilisation(self):
        g = ExecutionGraph.empty(make_application([("X", 4, 1)]))
        multi = MultiApplication(
            [ConcurrentApp("a", g, F(8)), ConcurrentApp("b", g, F(2))]
        )
        value, mapping = optimize_shared_mapping(
            multi.combined_graph,
            CommModel.OVERLAP,
            Platform.homogeneous(2),
            weights=multi.weights(),
        )
        costs = ConcurrentCosts(
            multi, Platform.homogeneous(2), mapping, model=CommModel.OVERLAP
        )
        assert value == costs.max_utilisation()
        # b is 4x more demanding per time unit: each app gets its own server.
        assert mapping.server("a.X") != mapping.server("b.X")


# ---------------------------------------------------------------------------
# solve_concurrent (acceptance criteria)
# ---------------------------------------------------------------------------

class TestSolveConcurrent:
    def test_unshared_servers_match_single_app_solve(self):
        """Acceptance: per-app periods == single-app solve without sharing."""
        inst = fig1_example()
        multi = load_concurrent_workload("fig1+fig1").multi
        platform = Platform.homogeneous(10)
        services = list(inst.graph.nodes)
        mapping = multi.combined_mapping(
            {
                "a0-fig1": {svc: f"S{i + 1}" for i, svc in enumerate(services)},
                "a1-fig1": {svc: f"S{i + 6}" for i, svc in enumerate(services)},
            }
        )
        assert mapping.is_injective
        result = solve_concurrent(multi, platform=platform, mapping=mapping)
        single = solve(
            inst.graph, objective="period", model="overlap", schedule=False
        )
        assert result.method == "pinned"
        assert result.app_periods == {
            "a0-fig1": single.value, "a1-fig1": single.value
        }
        assert result.value == single.value  # disjoint unit servers: no interference
        single_latency = solve(
            inst.graph, objective="latency", model="overlap", schedule=False,
            cache=EvaluationCache(),
        )
        assert result.app_latencies["a0-fig1"] == single_latency.value

    def test_fewer_servers_than_services_is_feasible(self):
        """Acceptance: 10 services on 3 servers -> strictly feasible plan."""
        result = solve_concurrent(["fig1", "fig1"], platform="hom:n=3")
        assert result.objective == "period"
        assert not result.mapping.is_injective  # pigeonhole: sharing forced
        assert set(result.mapping.services()) == set(
            result.multi.combined_graph.nodes
        )
        assert result.feasible
        assert result.value > 0
        # The shared system can never beat each app running alone on the
        # whole (unit) platform.
        single = solve(
            fig1_example().graph, objective="period", model="overlap",
            schedule=False,
        )
        assert result.value >= single.value
        for name in result.multi.names:
            assert result.app_periods[name] >= single.value
        # Per-server loads are consistent with the objective value.
        assert max(result.server_loads.values()) == result.value

    def test_targets_drive_utilisation_and_feasibility(self):
        generous = solve_concurrent(
            ["fig1", "fig1"], platform="hom:n=3",
            targets={"a0-fig1": 100, "a1-fig1": 100},
        )
        assert generous.objective == "utilisation"
        assert generous.utilisation is not None
        assert generous.feasible and generous.utilisation <= 1
        tight = solve_concurrent(
            ["fig1", "fig1"], platform="hom:n=3",
            targets={"a0-fig1": 1, "a1-fig1": 1},
        )
        assert not tight.feasible and tight.utilisation > 1
        with pytest.raises(ValueError, match="unknown application"):
            solve_concurrent(
                ["fig1"], platform="hom:n=2", targets={"nope": 4}
            )
        # Targets are all-or-nothing: a missing one must not silently be
        # treated as rho = 1 and drive the feasibility verdict.
        with pytest.raises(ValueError, match="cover every application"):
            solve_concurrent(
                ["fig1", "fig1"], platform="hom:n=3",
                targets={"a0-fig1": 100},
            )

    def test_requires_platform_and_accepts_specs(self):
        with pytest.raises(ValueError, match="platform"):
            solve_concurrent(["fig1", "fig1"], platform=None)
        # A '+' spec string is accepted directly as the problem.
        result = solve_concurrent("fig1+fig1", platform="hom:n=3")
        assert result.multi.names == ("a0-fig1", "a1-fig1")

    def test_workload_without_fixed_graph_gets_one(self):
        wl = load_concurrent_workload("hetdemo+fig1")
        assert wl.multi.names == ("a0-hetdemo", "a1-fig1")
        # hetdemo has no fixed graph; the derived one is the homogeneous
        # optimum (the chain A -> B, period 4).
        derived = wl.multi["a0-hetdemo"].graph
        assert sorted(derived.edges) == [("A", "B")]

    def test_result_serialises(self):
        result = solve_concurrent(["fig1", "fig1"], platform="hom:n=3")
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["feasible"] is True
        assert set(payload["applications"]) == set(result.multi.names)
        assert "shared" in result.method or result.method == "pinned"
        assert "ms" in result.summary()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestConcurrentCLI:
    def test_text_output(self, capsys):
        assert cli_main(
            ["concurrent", "fig1+fig1", "--platform", "hom:n=3"]
        ) == 0
        out = capsys.readouterr().out
        assert "a0-fig1" in out and "shared servers:" in out

    def test_json_output(self, capsys):
        assert cli_main(
            ["concurrent", "fig1+fig1", "--platform", "hom:n=3", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "fig1+fig1"
        assert payload["result"]["objective"] == "period"

    def test_targets_positional_and_named(self, capsys):
        assert cli_main(
            ["concurrent", "fig1+fig1", "--platform", "hom:n=3",
             "--targets", "100,100"]
        ) == 0
        assert "utilisation" in capsys.readouterr().out
        assert cli_main(
            ["concurrent", "fig1+fig1", "--platform", "hom:n=3",
             "--targets", "a0-fig1=100,a1-fig1=100"]
        ) == 0

    def test_error_paths_return_2(self, capsys):
        assert cli_main(
            ["concurrent", "fig1+nosuch", "--platform", "hom:n=3"]
        ) == 2
        assert cli_main(
            ["concurrent", "fig1+fig1", "--platform", "hom:n=3",
             "--targets", "1,2,3"]
        ) == 2
