"""The planner facade: solver parity, auto-selection, caching, CLI."""

import json
import os
import subprocess
import sys
from fractions import Fraction

import pytest

from repro.core import ALL_MODELS, CommModel, ExecutionGraph, make_application
from repro.optimize import (
    exhaustive_minlatency,
    exhaustive_minperiod,
    greedy_minperiod,
    local_search_minperiod,
    minlatency_chain,
    minperiod_chain,
    nocomm_optimal_period_plan,
    period_objective,
)
from repro.planner import (
    AUTO_EXHAUSTIVE_MAX,
    EvaluationCache,
    PlanResult,
    SolverRegistry,
    load_workload,
    solve,
    solve_many,
    compare,
)
from repro.workloads import fig1_example
from repro.workloads.generators import random_application

F = Fraction


@pytest.fixture(scope="module")
def fig1():
    return fig1_example()


# ---------------------------------------------------------------------------
# Facade vs direct optimizer calls (mapping problems)
# ---------------------------------------------------------------------------

class TestFacadeParity:
    @pytest.fixture(scope="class")
    def app(self):
        return random_application(4, seed=11, filter_fraction=0.7)

    def test_exhaustive_matches_direct(self, app):
        direct_val, _ = exhaustive_minperiod(app, CommModel.OVERLAP)
        result = solve(app, objective="period", model="overlap",
                       method="exhaustive", cache=EvaluationCache())
        assert result.value == direct_val
        assert result.method == "exhaustive"
        # (n+1)^n parent maps, minus the cyclic ones.
        assert result.stats.graphs_considered == 125

    def test_exhaustive_latency_matches_direct(self, app):
        direct_val, _ = exhaustive_minlatency(app, CommModel.OVERLAP)
        result = solve(app, objective="latency", model="overlap",
                       method="exhaustive", cache=EvaluationCache())
        assert result.value == direct_val

    def test_greedy_matches_direct(self, app):
        direct_val, _ = greedy_minperiod(app, CommModel.OVERLAP)
        result = solve(app, objective="period", model="overlap",
                       method="greedy", cache=EvaluationCache())
        assert result.value == direct_val

    def test_local_search_matches_direct(self, app):
        _, seed_graph = greedy_minperiod(app, CommModel.OVERLAP)
        direct_val, _ = local_search_minperiod(seed_graph, CommModel.OVERLAP)
        result = solve(app, objective="period", model="overlap",
                       method="local-search", cache=EvaluationCache())
        assert result.value == direct_val
        assert result.stats.extras["seed_value"] >= result.value

    def test_chain_and_nocomm_match_direct(self, app):
        assert solve(app, method="chain", schedule=False).value == \
            minperiod_chain(app, CommModel.OVERLAP)[0]
        assert solve(app, objective="latency", method="chain",
                     schedule=False).value == minlatency_chain(app)[0]
        _, base_graph = nocomm_optimal_period_plan(app)
        assert solve(app, method="nocomm", schedule=False).value == \
            period_objective(base_graph, CommModel.OVERLAP)

    def test_plan_is_scheduled_and_valid(self, app):
        for model in ALL_MODELS:
            result = solve(app, objective="period", model=model)
            assert result.plan is not None
            assert result.plan.is_valid()
            assert result.scheduled_value >= result.value or \
                result.scheduled_value == result.value


# ---------------------------------------------------------------------------
# The paper's Section 2.3 example through the facade
# ---------------------------------------------------------------------------

class TestFig1:
    def test_inorder_23_3_exhaustive_and_heuristic(self, fig1):
        for method in ("exhaustive", "heuristic"):
            result = solve(fig1.graph, objective="period", model="inorder",
                           method=method)
            assert result.value == F(23, 3), method
            assert result.plan.is_valid()

    def test_all_expected_values(self, fig1):
        assert solve(fig1.graph, model="overlap").value == 4
        assert solve(fig1.graph, model="outorder").value == 7
        assert solve(fig1.graph, model="inorder").value == F(23, 3)
        assert solve(fig1.graph, objective="latency", model="overlap").value == 21

    def test_compare_grid(self, fig1):
        results = compare(fig1.graph, objectives=["period"])
        values = {str(r.model): r.value for r in results}
        assert values == {"OVERLAP": 4, "INORDER": F(23, 3), "OUTORDER": 7}


# ---------------------------------------------------------------------------
# Auto method selection
# ---------------------------------------------------------------------------

class TestAutoSelection:
    def test_small_instance_goes_branch_and_bound(self):
        n = AUTO_EXHAUSTIVE_MAX["period"]
        app = random_application(n, seed=1)
        result = solve(app, schedule=False)
        assert result.method == "branch-and-bound"
        assert result.requested_method == "auto"

    def test_large_instance_goes_local_search(self):
        n = AUTO_EXHAUSTIVE_MAX["period"] + 1
        app = random_application(n, seed=1)
        result = solve(app, schedule=False)
        assert result.method == "local-search"

    def test_latency_threshold_is_tighter(self):
        n = AUTO_EXHAUSTIVE_MAX["latency"] + 1
        app = random_application(n, seed=2)
        assert solve(app, objective="latency", schedule=False).method == \
            "local-search"
        assert solve(app, objective="period", schedule=False).method == \
            "branch-and-bound"

    def test_precedence_still_goes_exhaustive(self):
        app = make_application(
            [("A", 1, 1), ("B", 2, 1)], precedence=[("A", "B")]
        )
        result = solve(app, schedule=False, cache=EvaluationCache())
        assert result.method == "exhaustive"

    def test_graph_auto_resolves_to_schedule(self, fig1):
        result = solve(fig1.graph, model="overlap")
        assert result.method == "schedule"
        assert result.requested_method == "auto"

    def test_graph_rejects_stray_solver_options(self, fig1):
        with pytest.raises(TypeError, match="fixed-graph"):
            solve(fig1.graph, model="overlap", bogus_option=1)

    def test_exhaustive_latency_refuses_large_n_unless_forests(self):
        app = random_application(6, seed=3)
        with pytest.raises(ValueError, match="space='forests'"):
            solve(app, objective="latency", method="exhaustive",
                  schedule=False)
        result = solve(app, objective="latency", method="exhaustive",
                       space="forests", schedule=False,
                       cache=EvaluationCache())
        assert result.stats.extras["space"] == "forests"

    def test_unknown_method_raises(self, fig1):
        with pytest.raises(ValueError):
            solve(fig1_example().application, method="no-such-solver")
        with pytest.raises(ValueError):
            solve(fig1.graph, method="no-such-solver")

    def test_explicit_effort_on_graph_is_honoured(self, fig1):
        # effort must not be silently ignored under the default method.
        result = solve(fig1.graph, model="inorder", effort="bound")
        assert result.method == "bound"
        assert result.value == 7
        exact = solve(fig1.graph, model="inorder", effort="exact")
        assert exact.method == "exhaustive"
        assert exact.value == F(23, 3)


# ---------------------------------------------------------------------------
# Evaluation cache
# ---------------------------------------------------------------------------

class TestCache:
    def test_cached_values_identical_to_uncached(self):
        app = random_application(4, seed=5)
        cache = EvaluationCache()
        warm = solve(app, method="local-search", cache=cache, schedule=False)
        # Second run over the same instance: all lookups served from memo.
        cached = solve(app, method="local-search", cache=cache, schedule=False)
        assert cached.value == warm.value
        assert cached.stats.evaluations == 0
        assert cached.stats.cache_hits > 0
        # And a fresh cache recomputes to the same value.
        cold = solve(app, method="local-search", cache=EvaluationCache(),
                     schedule=False)
        assert cold.value == warm.value

    def test_local_search_hits_cache_within_one_solve(self):
        app = random_application(5, seed=7)
        result = solve(app, method="local-search", cache=EvaluationCache(),
                       schedule=False)
        # Local search re-scores the incumbent and revisits neighbours, so
        # the memo must save work even within a single solve.
        assert result.stats.cache_hits > 0
        assert result.stats.evaluations > 0

    def test_cache_is_content_keyed(self):
        cache = EvaluationCache()
        obj = cache.objective("period", CommModel.OVERLAP)
        app1 = make_application([("A", 2, "1/2"), ("B", 4, 1)])
        app2 = make_application([("A", 2, "1/2"), ("B", 4, 1)])  # equal content
        g1 = ExecutionGraph.chain(app1, ["A", "B"])
        g2 = ExecutionGraph.chain(app2, ["A", "B"])
        assert obj(g1) == obj(g2)
        assert cache.hits == 1 and cache.misses == 1

    def test_effort_canonicalisation_overlap_period(self):
        cache = EvaluationCache()
        app = make_application([("A", 2, "1/2"), ("B", 4, 1)])
        graph = ExecutionGraph.chain(app, ["A", "B"])
        from repro.optimize import Effort
        heuristic = cache.objective("period", CommModel.OVERLAP)
        exact = cache.objective("period", CommModel.OVERLAP, Effort.EXACT)
        assert heuristic(graph) == exact(graph)
        assert cache.hits == 1  # one entry shared across efforts


# ---------------------------------------------------------------------------
# Custom solver registration
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_register_and_dispatch(self):
        reg = SolverRegistry()

        def star_solver(app, *, objective, model, effort, objective_fn):
            hub = min(app.names, key=app.cost)
            graph = ExecutionGraph(
                app, [(hub, n) for n in app.names if n != hub]
            )
            return objective_fn(graph), graph, {"hub": hub}

        reg.register("star", star_solver, description="hub star")
        app = make_application([("A", 1, "1/2"), ("B", 4, 1), ("C", 9, 1)])
        result = solve(app, method="star", registry=reg, schedule=False)
        assert result.method == "star"
        assert result.stats.extras["hub"] == "A"
        assert result.value == period_objective(
            result.graph, CommModel.OVERLAP
        )

    def test_duplicate_registration_rejected(self):
        reg = SolverRegistry()
        fn = lambda app, **kw: None  # noqa: E731
        reg.register("x", fn)
        with pytest.raises(ValueError):
            reg.register("x", fn)
        reg.register("x", fn, replace=True)

    def test_scoping_rejects_unsupported(self):
        reg = SolverRegistry()
        reg.register("tiny", lambda app, **kw: None, max_services=2)
        app = make_application([("A", 1, 1), ("B", 1, 1), ("C", 1, 1)])
        with pytest.raises(ValueError):
            solve(app, method="tiny", registry=reg)


# ---------------------------------------------------------------------------
# Workload catalog
# ---------------------------------------------------------------------------

class TestCatalog:
    def test_named_instances(self):
        wl = load_workload("fig1")
        assert wl.graph is not None and len(wl.application) == 5
        assert wl.expected["period_inorder"] == F(23, 3)

    def test_generator_families(self):
        wl = load_workload("random:n=6,seed=3")
        assert len(wl.application) == 6 and wl.graph is None
        wl = load_workload("layered:widths=2x2,seed=1")
        assert len(wl.application) == 4 and wl.graph is not None
        wl = load_workload("star:leaves=3")
        assert len(wl.application) == 4

    def test_bad_specs_raise(self):
        with pytest.raises(ValueError):
            load_workload("nope")
        with pytest.raises(ValueError):
            load_workload("fig1:n=3")
        with pytest.raises(ValueError):
            load_workload("random:nonsense")

    def test_misspelled_option_keys_rejected(self):
        # A typo must not silently produce a different workload.
        with pytest.raises(ValueError, match="unknown option"):
            load_workload("random:n=4,filter=0.9")
        with pytest.raises(ValueError, match="unknown option"):
            load_workload("star:leafs=3")


# ---------------------------------------------------------------------------
# Batch driver
# ---------------------------------------------------------------------------

class TestSolveMany:
    def test_serial_matches_individual_solves(self):
        specs = ["fig1", "b1", "hetdemo"]
        batch = solve_many(specs, model="overlap", schedule=False,
                           processes=1, cache=EvaluationCache())
        individual = []
        for spec in specs:
            wl = load_workload(spec)
            individual.append(
                solve(wl.problem, model="overlap", schedule=False,
                      platform=wl.platform, mapping=wl.mapping,
                      cache=EvaluationCache()).value
            )
        assert [r.value for r in batch.results] == individual
        assert batch.shards == 1 and batch.processes == 1

    def test_parallel_matches_serial_and_merges_cache(self):
        specs = [f"random:n=4,seed={s}" for s in range(6)]
        serial = solve_many(specs, model="overlap", schedule=False,
                            processes=1, cache=EvaluationCache())
        cache = EvaluationCache()
        parallel = solve_many(specs, model="overlap", schedule=False,
                              processes=2, cache=cache)
        assert [r.value for r in parallel.results] == \
            [r.value for r in serial.results]
        assert parallel.shards == 2
        # The merged shard caches now answer the same solves for free.
        assert parallel.merged_entries > 0
        warm = solve(load_workload(specs[0]).problem, model="overlap",
                     schedule=False, cache=cache)
        assert warm.stats.evaluations == 0 and warm.stats.cache_hits > 0

    def test_aggregated_stats_and_order(self):
        specs = ["random:n=3,seed=1", "fig1", "random:n=3,seed=2"]
        batch = solve_many(specs, model="overlap", schedule=False,
                           processes=2, cache=EvaluationCache())
        assert len(batch.results) == 3
        # fig1 bundles a fixed graph: the middle result is the graph solve.
        assert batch.results[1].value == 4
        assert batch.stats.graphs_considered >= \
            max(r.stats.graphs_considered for r in batch.results)
        assert batch.stats.extras["jobs"] == 3
        payload = json.loads(json.dumps(batch.as_dict()))
        assert payload["shards"] == batch.shards

    def test_accepts_problem_objects_and_batch_platform(self):
        app = make_application([("A", 1, "1/2"), ("B", 8, 1)])
        batch = solve_many([app, app], model="overlap", schedule=False,
                           platform="demo2", processes=1,
                           cache=EvaluationCache())
        assert [str(r.value) for r in batch.results] == ["2", "2"]

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            solve_many([])


# ---------------------------------------------------------------------------
# PlanResult serialisation
# ---------------------------------------------------------------------------

def test_result_as_dict_roundtrips_json(fig1):
    result = solve(fig1.graph, model="inorder")
    payload = json.loads(json.dumps(result.as_dict()))
    assert payload["value"] == "23/3"
    assert payload["plan_valid"] is True
    assert payload["stats"]["wall_time"] >= 0
    assert isinstance(result.summary(), str)


# ---------------------------------------------------------------------------
# CLI smoke tests
# ---------------------------------------------------------------------------

def _run_cli(*args):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


class TestCLI:
    def test_solve_fig1_inorder(self):
        proc = _run_cli("solve", "fig1", "--model", "inorder")
        assert proc.returncode == 0, proc.stderr
        assert "23/3" in proc.stdout

    def test_solve_json(self):
        proc = _run_cli("solve", "fig1", "--model", "inorder", "--json")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["results"][0]["value"] == "23/3"

    def test_compare(self):
        proc = _run_cli("compare", "fig1", "--models", "overlap,outorder")
        assert proc.returncode == 0, proc.stderr
        out = proc.stdout
        assert "OVERLAP" in out and "OUTORDER" in out

    def test_compare_methods_all_on_fixed_graph(self):
        # "all" must expand to orchestration methods for graph workloads.
        proc = _run_cli("compare", "fig1", "--models", "inorder",
                        "--methods", "all", "--no-schedule")
        assert proc.returncode == 0, proc.stderr
        assert "bound" in proc.stdout and "heuristic" in proc.stdout

    def test_remap_small_random(self):
        proc = _run_cli(
            "solve", "random:n=4,seed=1", "--method", "exhaustive",
            "--no-schedule",
        )
        assert proc.returncode == 0, proc.stderr
        assert "exhaustive" in proc.stdout

    def test_batch(self):
        proc = _run_cli("batch", "fig1", "b1", "--no-schedule",
                        "--processes", "2")
        assert proc.returncode == 0, proc.stderr
        assert "fig1" in proc.stdout and "2 workloads" in proc.stdout

    def test_batch_json(self):
        proc = _run_cli("batch", "fig1", "--json", "--no-schedule",
                        "--processes", "1")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["results"][0]["value"] == "4"
        assert payload["shards"] == 1

    def test_list(self):
        proc = _run_cli("list")
        assert proc.returncode == 0, proc.stderr
        assert "local-search" in proc.stdout and "fig1" in proc.stdout
        assert "branch-and-bound" in proc.stdout

    def test_bad_workload_errors_cleanly(self):
        proc = _run_cli("solve", "no-such-workload")
        assert proc.returncode == 2
        assert "unknown workload" in proc.stderr
