"""Unit tests for repro.core.service."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Application, Service, as_fraction, make_application


class TestAsFraction:
    def test_int(self):
        assert as_fraction(3) == Fraction(3)

    def test_fraction_passthrough(self):
        f = Fraction(23, 3)
        assert as_fraction(f) is f

    def test_float_uses_decimal_literal(self):
        assert as_fraction(0.9999) == Fraction(9999, 10000)

    def test_string(self):
        assert as_fraction("23/3") == Fraction(23, 3)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(float("nan"))

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(float("inf"))

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(object())

    @given(st.integers(-10**6, 10**6), st.integers(1, 10**6))
    def test_rationals_roundtrip(self, num, den):
        f = Fraction(num, den)
        assert as_fraction(f) == f


class TestService:
    def test_basic(self):
        s = Service("C1", Fraction(4), Fraction(1))
        assert s.cost == 4
        assert s.selectivity == 1
        assert not s.is_filter
        assert not s.is_expander

    def test_filter_flag(self):
        assert Service("f", 1, Fraction(1, 2)).is_filter
        assert Service("e", 1, 2).is_expander

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Service("x", -1, 1)

    def test_zero_selectivity_rejected(self):
        with pytest.raises(ValueError):
            Service("x", 1, 0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Service("", 1, 1)

    def test_numeric_coercion(self):
        s = Service("x", 0.5, "1/3")
        assert s.cost == Fraction(1, 2)
        assert s.selectivity == Fraction(1, 3)


class TestApplication:
    def test_lookup(self):
        app = make_application([("a", 1, 1), ("b", 2, Fraction(1, 2))])
        assert app["b"].cost == 2
        assert len(app) == 2
        assert "a" in app and "z" not in app
        assert app.names == ("a", "b")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_application([("a", 1, 1), ("a", 2, 2)])

    def test_unknown_precedence_rejected(self):
        with pytest.raises(ValueError):
            make_application([("a", 1, 1)], precedence=[("a", "b")])

    def test_self_loop_precedence_rejected(self):
        with pytest.raises(ValueError):
            make_application([("a", 1, 1)], precedence=[("a", "a")])

    def test_precedence_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            make_application(
                [("a", 1, 1), ("b", 1, 1)], precedence=[("a", "b"), ("b", "a")]
            )

    def test_unknown_service_keyerror(self):
        app = make_application([("a", 1, 1)])
        with pytest.raises(KeyError):
            app["zzz"]

    def test_filters_and_expanders(self):
        app = make_application(
            [("f", 1, Fraction(1, 2)), ("u", 1, 1), ("e", 1, 3)]
        )
        assert [s.name for s in app.filters()] == ["f"]
        assert [s.name for s in app.expanders()] == ["u", "e"]

    def test_restricted_to(self):
        app = make_application(
            [("a", 1, 1), ("b", 1, 1), ("c", 1, 1)],
            precedence=[("a", "b"), ("b", "c")],
        )
        sub = app.restricted_to(["a", "b"])
        assert sub.names == ("a", "b")
        assert sub.precedence == frozenset({("a", "b")})

    def test_restricted_to_unknown(self):
        app = make_application([("a", 1, 1)])
        with pytest.raises(KeyError):
            app.restricted_to(["nope"])

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 50),
                st.fractions(min_value=0, max_value=100),
                st.fractions(min_value=Fraction(1, 100), max_value=100),
            ),
            min_size=1,
            max_size=8,
            unique_by=lambda t: t[0],
        )
    )
    def test_property_construction(self, triples):
        app = make_application([(f"C{i}", c, s) for i, c, s in triples])
        assert len(app) == len(triples)
        for i, c, s in triples:
            assert app[f"C{i}"].cost == c
            assert app[f"C{i}"].selectivity == s
