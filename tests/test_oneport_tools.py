"""Tests for the one-port separation tools and the OUTORDER repair search."""

from fractions import Fraction

import pytest

from repro.core import CommModel, ExecutionGraph, Plan, make_application
from repro.scheduling import (
    oneport_latency_schedule,
    oneport_overlap_period,
    repair_schedule,
    saturated_bipartite_window_feasible,
)
from repro.scheduling.oneport_overlap import (
    _circular_intervals_disjoint,
    _free_slot_exists,
    pack_bipartite_window,
)
from repro.workloads.paper import b3_period_ports, fig1_example

F = Fraction


class TestCircularIntervals:
    def test_disjoint(self):
        assert _circular_intervals_disjoint([(F(0), F(2)), (F(2), F(2))], F(6))

    def test_wraparound_conflict(self):
        assert not _circular_intervals_disjoint(
            [(F(5), F(2)), (F(0), F(2))], F(6)
        )

    def test_free_slot_found(self):
        slots = _free_slot_exists([(F(0), F(2)), (F(4), F(2))], F(2), F(8))
        assert F(6) in slots or F(2) in slots

    def test_no_free_slot(self):
        assert _free_slot_exists([(F(0), F(5))], F(2), F(6)) == []

    def test_empty_is_free(self):
        assert _free_slot_exists([], F(3), F(6)) == [F(0)]


class TestSaturatedWindow:
    def test_b2_infeasible(self):
        from repro.workloads.paper import b2_latency_ports

        inst = b2_latency_ports()
        assert not saturated_bipartite_window_feasible(
            inst.graph,
            [f"C{i}" for i in range(1, 7)],
            [f"C{j}" for j in range(7, 13)],
        )

    def test_uniform_instance_feasible(self):
        """A 2x2 uniform bipartite cut packs perfectly (round robin)."""
        app = make_application(
            [("s1", 1, 1), ("s2", 1, 1), ("r1", 1, 1), ("r2", 1, 1)]
        )
        graph = ExecutionGraph(
            app, [("s1", "r1"), ("s1", "r2"), ("s2", "r1"), ("s2", "r2")]
        )
        assert saturated_bipartite_window_feasible(
            graph, ["s1", "s2"], ["r1", "r2"]
        )

    def test_unsaturated_rejected(self):
        app = make_application([("s1", 1, 1), ("s2", 1, 2), ("r", 1, 1)])
        graph = ExecutionGraph(app, [("s1", "r"), ("s2", "r")])
        with pytest.raises(ValueError):
            saturated_bipartite_window_feasible(graph, ["s1", "s2"], ["r"])

    def test_packing_with_slack_succeeds(self):
        from repro.workloads.paper import b2_latency_ports

        inst = b2_latency_ports()
        packing = pack_bipartite_window(
            inst.graph,
            [f"C{i}" for i in range(1, 7)],
            [f"C{j}" for j in range(7, 13)],
            F(2),
            F(9),
        )
        assert packing is not None
        assert len(packing) == 18

    def test_packing_too_tight_fails(self):
        from repro.workloads.paper import b2_latency_ports

        inst = b2_latency_ports()
        # integral grid in a 6-unit window: infeasible (matches the
        # saturated checker on this instance)
        assert (
            pack_bipartite_window(
                inst.graph,
                [f"C{i}" for i in range(1, 7)],
                [f"C{j}" for j in range(7, 13)],
                F(2),
                F(8),
            )
            is None
        )


class TestOnePortOverlapPeriod:
    def test_b3_upper_bound(self):
        inst = b3_period_ports(corrected=True)
        ub = oneport_overlap_period(inst.graph)
        assert ub > 12

    def test_single_chain(self):
        app = make_application([("a", 2, 1), ("b", 3, 1)])
        graph = ExecutionGraph.chain(app, ["a", "b"])
        # ports: a.recv=1, a.send=1, b.recv=1, b.send=1, comps 2 and 3
        assert oneport_overlap_period(graph) == 3


class TestRepairSchedule:
    def test_fig1_repair_to_seven(self):
        inst = fig1_example()
        base = oneport_latency_schedule(inst.graph).operation_list
        ol = repair_schedule(inst.graph, base, F(7))
        assert ol is not None
        assert ol.period == 7

    def test_repair_rejects_too_small_period(self):
        inst = fig1_example()
        base = oneport_latency_schedule(inst.graph).operation_list
        # computation of cost 4 cannot fit a period of 3
        assert repair_schedule(inst.graph, base, F(3)) is None

    def test_repair_below_bound_fails(self):
        inst = fig1_example()
        base = oneport_latency_schedule(inst.graph).operation_list
        # below the OUTORDER bound 7 no schedule exists; the search must
        # terminate (budget) and report failure, not loop forever
        assert repair_schedule(inst.graph, base, F(6), max_rounds=400) is None

    def test_repair_result_is_plan(self):
        inst = fig1_example()
        base = oneport_latency_schedule(inst.graph).operation_list
        ol = repair_schedule(inst.graph, base, F(8))
        assert ol is not None
        plan = Plan(inst.graph, ol, CommModel.OUTORDER)
        assert plan.validate().ok
