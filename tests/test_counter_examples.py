"""Appendix B counter-examples: B.1 (comm costs), B.2 (latency ports),
B.3 (period ports)."""

from fractions import Fraction

import pytest

from repro.core import CommModel, CostModel, validate
from repro.scheduling import (
    b3_oneport_period12_feasible,
    oneport_latency_schedule,
    oneport_overlap_period,
    overlap_latency_layered,
    saturated_bipartite_window_feasible,
    schedule_period_overlap,
)
from repro.workloads.paper import (
    b2_latency_ports,
    b2_multiport_operation_list,
    b3_period_ports,
)

F = Fraction


class TestB2LatencyPorts:
    """Multi-port latency 20, one-port strictly above 20 (Figure 5)."""

    def test_multiport_schedule_is_valid_and_20(self):
        inst = b2_latency_ports()
        ol = b2_multiport_operation_list()
        assert ol.latency == 20
        report = validate(inst.graph, ol, CommModel.OVERLAP)
        assert report.ok, report.violations

    def test_layered_scheduler_recovers_20(self):
        inst = b2_latency_ports()
        plan = overlap_latency_layered(inst.graph)
        assert plan is not None
        assert plan.latency == 20
        assert plan.validate().ok, plan.validate().violations

    def test_critical_path_below_20(self):
        """The per-message critical path (17) is looser than the true
        multi-port optimum 20, which needs the saturated-window argument."""
        inst = b2_latency_ports()
        lb = CostModel(inst.graph).latency_lower_bound()
        assert lb == 17
        assert lb <= 20

    def test_oneport_window_is_infeasible(self):
        """The paper's argument, executed: no one-port packing of the
        saturated cut fits the 6-unit window, hence one-port latency > 20."""
        inst = b2_latency_ports()
        senders = [f"C{i}" for i in range(1, 7)]
        receivers = [f"C{j}" for j in range(7, 13)]
        assert not saturated_bipartite_window_feasible(
            inst.graph, senders, receivers
        )

    def test_oneport_latency_21_constructible(self):
        """A one-port schedule with latency 21 exists: pack the cut into
        the 7-unit window [2, 9] (one idle unit per port) and validate."""
        from repro.core import INPUT, OUTPUT, OperationList, comm_op, comp_op
        from repro.scheduling.oneport_overlap import pack_bipartite_window

        inst = b2_latency_ports()
        senders = [f"C{i}" for i in range(1, 7)]
        receivers = [f"C{j}" for j in range(7, 13)]
        packing = pack_bipartite_window(
            inst.graph, senders, receivers, F(2), F(9)
        )
        assert packing is not None
        cm = CostModel(inst.graph)
        times = {}
        for i, s in enumerate(senders):
            times[comm_op(INPUT, s)] = (F(0), F(1))
            times[comp_op(s)] = (F(1), F(2))
        for (s, r), b in packing.items():
            times[comm_op(s, r)] = (b, b + cm.outsize(s))
        for r in receivers:
            times[comp_op(r)] = (F(9), F(15))
            times[comm_op(r, OUTPUT)] = (F(15), F(21))
        ol = OperationList(times, lam=F(21))
        report = validate(inst.graph, ol, CommModel.INORDER)
        assert report.ok, report.violations
        assert ol.latency == 21

    def test_oneport_greedy_upper_bound(self):
        inst = b2_latency_ports()
        plan = oneport_latency_schedule(inst.graph)
        assert plan.validate().ok
        assert plan.latency > 20  # consistent with the separation


class TestB3PeriodPorts:
    """Multi-port period 12, one-port strictly above 12 (Figure 6)."""

    def test_corrected_instance_loads(self):
        inst = b3_period_ports(corrected=True)
        cm = CostModel(inst.graph)
        for s in ("C1", "C2", "C3"):
            assert cm.cout(s) == 12
        for r in ("C5", "C6", "C7"):
            assert cm.cin(r) == 12
        assert cm.period_lower_bound(CommModel.OVERLAP) == 12

    def test_multiport_scheduler_achieves_12(self):
        inst = b3_period_ports(corrected=True)
        plan = schedule_period_overlap(inst.graph)
        assert plan.period == 12
        assert plan.validate().ok, plan.validate().violations

    def test_literal_instance_cross_comm_bound_12(self):
        """The paper's literal instance: the *cross* communication loads
        are 12, but Ccomp(C5..C7) = 72 and the output messages are 72 —
        the claimed period 12 only concerns the cut (paper slip; the
        corrected instance makes 12 the genuine optimum)."""
        inst = b3_period_ports(corrected=False)
        cm = CostModel(inst.graph)
        for s in ("C1", "C2", "C3"):
            assert cm.cout(s) == 12  # real successors only — no out edge
        for r in ("C5", "C6", "C7"):
            assert cm.cin(r) == 12
        assert cm.ccomp("C5") == 72
        assert cm.outsize("C5") == 72  # the ignored output message
        assert cm.communication_period_bound() == 72

    def test_oneport_period12_is_infeasible(self):
        """The paper's case analysis, executed exhaustively."""
        inst = b3_period_ports(corrected=True)
        assert not b3_oneport_period12_feasible(inst.graph)

    def test_oneport_upper_bound_above_12(self):
        inst = b3_period_ports(corrected=True)
        period = oneport_overlap_period(inst.graph)
        assert period > 12
