"""Delta evaluation: exact-Fraction parity with full CostModel recomputes."""

import random
from fractions import Fraction

import pytest

from repro.core import (
    CommModel,
    CostModel,
    ExecutionGraph,
    Mapping,
    make_application,
)
from repro.optimize import (
    Effort,
    IncrementalForestPeriod,
    IncrementalMappingCosts,
    local_search_forest,
    make_period_objective,
    optimize_mapping,
    placement_local_search,
)
from repro.workloads.generators import random_application, random_platform

F = Fraction


class TestForestParity:
    """score/apply_reparent == CostModel.period_lower_bound, bit for bit.

    The randomized sweep covers > 200 (graph, platform) configurations —
    unit and heterogeneous (pinned mapping) — across all three models,
    with several committed moves per configuration.
    """

    def test_randomized_parity_unit_and_het(self, forest_graph):
        rng = random.Random(7)
        configurations = 0
        moves_checked = 0
        for seed in range(72):
            n = 2 + seed % 5
            app = random_application(n, seed=seed)
            graph = forest_graph(app, rng)
            names = list(app.names)
            for model in CommModel:
                if seed % 2:
                    platform = random_platform(n + 1, seed=seed)
                    mapping = Mapping(dict(zip(names, platform.names)))
                else:
                    platform = mapping = None
                inc = IncrementalForestPeriod(
                    graph, model=model, platform=platform, mapping=mapping
                )
                expected = CostModel(graph, platform, mapping)
                assert inc.value() == expected.period_lower_bound(model)
                configurations += 1
                for _ in range(5):
                    node = rng.choice(names)
                    cand = rng.choice(
                        [None] + [p for p in names if p != node]
                    )
                    score = inc.score_reparent(node, cand)
                    if score is None:
                        continue
                    inc.apply_reparent(node, cand)
                    full = CostModel(
                        inc.graph(), platform, mapping
                    ).period_lower_bound(model)
                    assert score == full == inc.value()
                    moves_checked += 1
        assert configurations >= 200
        assert moves_checked >= 300

    def test_cycle_detection(self):
        app = make_application([("A", 1, "1/2"), ("B", 2, 1), ("C", 3, 1)])
        graph = ExecutionGraph(app, [("A", "B"), ("B", "C")])
        inc = IncrementalForestPeriod(graph)
        assert inc.score_reparent("A", "C") is None      # C descends from A
        assert inc.score_reparent("A", "B") is None      # likewise
        assert inc.score_reparent("C", "A") is not None  # reparent up: fine
        assert inc.score_reparent("B", "B") is None      # self
        assert inc.score_reparent("B", "A") is None      # no-op

    def test_rejects_non_forest_and_free_het_mapping(self):
        app = make_application([("A", 1, 1), ("B", 1, 1), ("C", 4, 1)])
        dag = ExecutionGraph(app, [("A", "C"), ("B", "C")])
        with pytest.raises(ValueError):
            IncrementalForestPeriod(dag)
        platform = random_platform(3, seed=0)
        with pytest.raises(ValueError):
            IncrementalForestPeriod(
                ExecutionGraph.empty(app), platform=platform
            )


class TestMappingParity:
    def test_randomized_parity(self, forest_graph):
        rng = random.Random(11)
        moves_checked = 0
        for seed in range(30):
            n = 2 + seed % 4
            app = random_application(n, seed=seed + 900)
            graph = forest_graph(app, rng)
            platform = random_platform(n + 2, seed=seed + 3)
            names = list(app.names)
            mapping = Mapping(dict(zip(names, platform.names)))
            for model in CommModel:
                inc = IncrementalMappingCosts(graph, platform, mapping, model=model)
                assert inc.value() == CostModel(
                    graph, platform, mapping
                ).period_lower_bound(model)
                for _ in range(4):
                    if rng.random() < 0.5:
                        svc = rng.choice(names)
                        idle = [
                            s for s in platform.names
                            if s not in inc.assignment.values()
                        ]
                        if not idle:
                            continue
                        srv = rng.choice(idle)
                        score = inc.score_reassign(svc, srv)
                        inc.apply_reassign(svc, srv)
                    elif n >= 2:
                        a, b = rng.sample(names, 2)
                        score = inc.score_swap(a, b)
                        inc.apply_swap(a, b)
                    else:
                        continue
                    full = CostModel(
                        graph, platform, inc.mapping()
                    ).period_lower_bound(model)
                    assert score == full == inc.value()
                    moves_checked += 1
        assert moves_checked >= 200


class TestSearchEquivalence:
    """The delta paths reach the same answers as the baseline paths."""

    def test_local_search_same_value_with_and_without_delta(self):
        for seed in range(15):
            n = 3 + seed % 5
            app = random_application(n, seed=seed + 50)
            start = ExecutionGraph.empty(app)
            objective = make_period_objective(CommModel.OVERLAP)
            base_val, base_graph = local_search_forest(start, objective)
            delta = IncrementalForestPeriod(start, model=CommModel.OVERLAP)
            fast_val, fast_graph = local_search_forest(
                start, objective, delta=delta
            )
            assert fast_val == base_val
            assert fast_graph.edges == base_graph.edges
            # Delta state tracked the committed moves exactly.
            assert delta.graph().edges == fast_graph.edges
            assert objective(fast_graph) == fast_val

    def test_delta_search_avoids_objective_calls(self):
        app = random_application(12, seed=8)
        start = ExecutionGraph.empty(app)
        objective = make_period_objective(CommModel.OVERLAP)
        calls = {"n": 0}

        def counting(graph):
            calls["n"] += 1
            return objective(graph)

        base_val, _ = local_search_forest(start, counting)
        baseline_calls = calls["n"]
        calls["n"] = 0
        delta = IncrementalForestPeriod(start, model=CommModel.OVERLAP)
        fast_val, _ = local_search_forest(start, counting, delta=delta)
        assert fast_val == base_val
        # The whole point: candidates priced by deltas, not evaluations.
        assert calls["n"] == 0
        assert baseline_calls >= 3 * max(calls["n"], 1)

    def test_placement_search_same_value_with_evaluator(self):
        for seed in range(8):
            n = 2 + seed % 3
            app = random_application(n, seed=seed + 200)
            graph = ExecutionGraph.empty(app)
            platform = random_platform(n + 2, seed=seed)
            names = list(app.names)
            start = Mapping(dict(zip(names, platform.names)))

            def objective(m):
                return CostModel(graph, platform, m).period_lower_bound(
                    CommModel.OVERLAP
                )

            base_val, base_map = placement_local_search(
                graph, objective, start, platform
            )
            evaluator = IncrementalMappingCosts(
                graph, platform, start, model=CommModel.OVERLAP
            )
            fast_val, fast_map = placement_local_search(
                graph, objective, start, platform, evaluator=evaluator
            )
            assert fast_val == base_val
            assert fast_map == base_map
            assert evaluator.mapping() == fast_map

    def test_optimize_mapping_large_space_uses_evaluator(self):
        # 7 services on 8 servers: P(8,7) = 40320 > 720, so the local
        # search (and hence the evaluator) path runs; the result must
        # agree with scoring the final mapping from scratch.
        app = random_application(7, seed=31)
        graph = ExecutionGraph.empty(app)
        platform = random_platform(8, seed=2)
        value, mapping = optimize_mapping(
            graph, "period", CommModel.OVERLAP, Effort.HEURISTIC, platform
        )
        assert value == CostModel(graph, platform, mapping).period_lower_bound(
            CommModel.OVERLAP
        )
