"""Simulation engine and runtime-policy tests."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CommModel, CostModel, ExecutionGraph, Plan, make_application
from repro.scheduling import (
    greedy_orders,
    inorder_period_for_orders,
    inorder_schedule,
    inorder_schedule_for_orders,
    oneport_latency_schedule,
    outorder_schedule,
    schedule_period_overlap,
)
from repro.simulate import PolicyTrace, simulate_inorder_policy, simulate_plan
from repro.workloads.paper import (
    fig1_example,
    fig1_inorder_period_23_3_operation_list,
    fig1_outorder_period7_operation_list,
)

F = Fraction


def small_app(n, data):
    return make_application(
        [
            (
                f"C{i}",
                data.draw(st.integers(0, 5)),
                data.draw(st.sampled_from([F(1, 2), F(1), F(2)])),
            )
            for i in range(n)
        ]
    )


def random_dag(app, data):
    names = list(app.names)
    edges = []
    for j in range(1, len(names)):
        for i in range(j):
            if data.draw(st.booleans()):
                edges.append((names[i], names[j]))
    return ExecutionGraph(app, edges)


class TestSimulatePlan:
    def test_fig1_inorder_replay(self):
        inst = fig1_example()
        plan = Plan(
            inst.graph, fig1_inorder_period_23_3_operation_list(), CommModel.INORDER
        )
        result = simulate_plan(plan, n_datasets=6)
        assert result.ok, result.violations
        assert result.empirical_period == F(23, 3)

    def test_fig1_outorder_replay(self):
        inst = fig1_example()
        plan = Plan(
            inst.graph, fig1_outorder_period7_operation_list(), CommModel.OUTORDER
        )
        result = simulate_plan(plan, n_datasets=6)
        assert result.ok, result.violations
        assert result.empirical_period == 7

    def test_detects_broken_schedule(self):
        inst = fig1_example()
        bad = fig1_inorder_period_23_3_operation_list().with_period(7)
        plan = Plan(inst.graph, bad, CommModel.INORDER)
        result = simulate_plan(plan, n_datasets=4)
        assert not result.ok

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_scheduler_outputs_replay_clean(self, data):
        n = data.draw(st.integers(2, 4))
        app = small_app(n, data)
        graph = random_dag(app, data)
        for plan in (
            schedule_period_overlap(graph),
            inorder_schedule(graph),
            outorder_schedule(graph),
            oneport_latency_schedule(graph),
        ):
            result = simulate_plan(plan, n_datasets=5)
            assert result.ok, (plan.model, result.violations)
            assert result.empirical_period == plan.period


class TestDatasetValidation:
    """Satellite regression: ``n_datasets < 1`` used to return a vacuous
    all-green SimulationResult instead of failing fast."""

    @pytest.mark.parametrize("n", [0, -1, -7])
    def test_simulate_plan_rejects_non_positive_n_datasets(self, n):
        inst = fig1_example()
        plan = schedule_period_overlap(inst.graph)
        with pytest.raises(ValueError, match="n_datasets >= 1"):
            simulate_plan(plan, n_datasets=n)

    @pytest.mark.parametrize("n", [0, -3])
    def test_policy_simulation_rejects_non_positive_n_datasets(self, n):
        inst = fig1_example()
        with pytest.raises(ValueError, match="n_datasets >= 1"):
            simulate_inorder_policy(inst.graph, n_datasets=n)


class TestPolicyTraceRecords:
    def test_record_flag_captures_per_operation_telemetry(self):
        inst = fig1_example()
        plain = simulate_inorder_policy(inst.graph, n_datasets=4)
        traced = simulate_inorder_policy(inst.graph, n_datasets=4, record=True)
        assert plain.records == []  # off by default — zero overhead
        assert traced.completion_times == plain.completion_times  # passive
        assert traced.records
        for op, dataset, start, end, size in traced.records:
            assert 0 <= dataset < 4
            assert end >= start and size > 0


#: Seeds of the randomized differential sweep (satellite: the engine was
#: previously only exercised on hand-built examples).
N_SWEEP = 100


class TestDifferentialSweep:
    """Differential test: discrete-event replay == analytic plan values.

    For 100 seeded random instances the Theorem-1 OVERLAP construction is
    built twice — on the paper's unit platform and on a random
    heterogeneous platform with a random injective mapping — replayed by
    the discrete-event engine, and required to reproduce *exactly* (exact
    Fractions) the analytic ``Plan.period`` (== the Section-2.1 bound) and
    ``Plan.latency``, with zero constraint violations on the expanded
    timeline.
    """

    @pytest.mark.parametrize("seed", range(N_SWEEP))
    def test_overlap_replay_matches_analytics(self, seed, het_instance):
        graph, platform, mapping = het_instance(seed + 3000)
        for plat, mapp in ((None, None), (platform, mapping)):
            plan = schedule_period_overlap(graph, platform=plat, mapping=mapp)
            result = simulate_plan(plan, n_datasets=5)
            assert result.ok, (plat, result.violations)
            bound = CostModel(graph, plat, mapp).period_lower_bound(
                CommModel.OVERLAP
            )
            # Empirical steady-state period == scheduled period == bound.
            assert result.empirical_period == plan.period == bound
            # Data set 0 completes exactly at the analytic latency.
            assert result.latencies[0] == plan.latency


class TestInorderPolicy:
    def test_steady_state_matches_mcr_fig1(self):
        """Runtime rendezvous simulation converges to the MCR prediction."""
        inst = fig1_example()
        orders = greedy_orders(inst.graph)
        predicted = inorder_period_for_orders(inst.graph, orders)
        trace = simulate_inorder_policy(inst.graph, n_datasets=40, orders=orders)
        assert trace.steady_state_period() == predicted

    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_steady_state_matches_mcr_random(self, data):
        n = data.draw(st.integers(2, 4))
        app = small_app(n, data)
        graph = random_dag(app, data)
        orders = greedy_orders(graph)
        try:
            predicted = inorder_period_for_orders(graph, orders)
        except Exception:
            return  # deadlocking orders are tested elsewhere
        trace = simulate_inorder_policy(graph, n_datasets=40, orders=orders)
        assert trace.steady_state_period() == predicted

    def test_policy_latency_vs_schedule(self):
        inst = fig1_example()
        trace = simulate_inorder_policy(inst.graph, n_datasets=4)
        # the first data set completes no earlier than the optimal latency
        assert trace.latency_first >= 21

    def test_needs_two_datasets(self):
        inst = fig1_example()
        trace = simulate_inorder_policy(inst.graph, n_datasets=1)
        with pytest.raises(ValueError):
            trace.steady_state_period()

    def test_negative_warmup_raises(self):
        # Used to fall through to Python's negative tail indexing and
        # either crash with IndexError or average the wrong gaps.
        trace = PolicyTrace([F(1), F(3)])
        with pytest.raises(ValueError, match="non-negative"):
            trace.steady_state_period(warmup=-3)

    def test_warmup_on_two_datasets(self):
        # n = 2 leaves exactly one gap; every admissible warmup reads it.
        trace = PolicyTrace([F(1), F(3)])
        assert trace.steady_state_period() == 2
        assert trace.steady_state_period(warmup=0) == 2

    def test_excessive_warmup_is_clamped(self):
        # warmup >= n-1 would leave no gap to average; the documented
        # behaviour clamps it to n-2 so one gap always survives.
        trace = PolicyTrace([F(1), F(3)])
        assert trace.steady_state_period(warmup=1) == 2
        assert trace.steady_state_period(warmup=100) == 2
        trace3 = PolicyTrace([F(0), F(1), F(6)])
        assert trace3.steady_state_period(warmup=100) == \
            trace3.steady_state_period(warmup=1) == 5
