"""Property-based shared-server invariants (satellite).

Three randomized sweeps of 100 seeded instances each:

(a) the per-server aggregated load is exactly the sum of the per-service
    loads (and the :class:`IncrementalSharedCosts` delta evaluator agrees
    with full recomputation, before and after random moves);
(b) collapsing every application to its own injective mapping on disjoint
    servers reproduces the single-application :class:`CostModel` values
    bit for bit (Fraction equality, per service and per readout);
(c) under OVERLAP, every application's Theorem-1 bound is still achieved
    by a concrete validated schedule given its induced mapping.
"""

import random
from fractions import Fraction

import pytest

from repro.concurrent import ConcurrentCosts, MultiApplication
from repro.core import CommModel, CostModel, Mapping
from repro.optimize import IncrementalSharedCosts
from repro.scheduling.overlap import schedule_period_overlap
from repro.workloads.generators import random_platform

N_INSTANCES = 100

ZERO = Fraction(0)


# ---------------------------------------------------------------------------
# (a) per-server aggregation == sum of per-service loads; delta parity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(N_INSTANCES))
def test_server_aggregation_is_sum_of_service_loads(seed, multi_instance):
    multi, platform, mapping = multi_instance(seed)
    costs = CostModel(multi.combined_graph, platform, mapping)
    nodes = set(multi.combined_graph.nodes)
    for server in costs.used_servers():
        services = costs.server_services(server)
        assert set(services) == {
            s for s in mapping.services_on(server) if s in nodes
        }
        assert costs.server_cin(server) == sum(
            (costs.cin(s) for s in services), ZERO
        )
        assert costs.server_ccomp(server) == sum(
            (costs.ccomp(s) for s in services), ZERO
        )
        assert costs.server_cout(server) == sum(
            (costs.cout(s) for s in services), ZERO
        )
    # The system period is the worst aggregated server, never better than
    # any single server's load.
    for model in CommModel:
        bound = costs.period_lower_bound(model)
        assert bound == max(
            costs.server_cexec(u, model) for u in costs.used_servers()
        )


@pytest.mark.parametrize("seed", range(N_INSTANCES))
def test_incremental_shared_parity_with_full_recompute(seed, multi_instance):
    multi, platform, mapping = multi_instance(seed)
    graph = multi.combined_graph
    rng = random.Random(seed)
    names = list(graph.nodes)
    model = list(CommModel)[seed % 3]
    inc = IncrementalSharedCosts(graph, platform, mapping, model=model)
    assert inc.value() == CostModel(graph, platform, mapping).period_lower_bound(
        model
    )
    for _ in range(4):
        if rng.random() < 0.5:
            svc = rng.choice(names)
            srv = rng.choice(platform.names)
            if srv == inc.assignment[svc]:
                continue
            score = inc.score_reassign(svc, srv)
            inc.apply_reassign(svc, srv)
        else:
            a, b = rng.sample(names, 2)
            if inc.assignment[a] == inc.assignment[b]:
                continue
            score = inc.score_swap(a, b)
            inc.apply_swap(a, b)
        full = CostModel(
            graph, platform, inc.mapping()
        ).period_lower_bound(model)
        assert score == full == inc.value()


# ---------------------------------------------------------------------------
# (b) injective per-app collapse == single-app CostModel, bit for bit
# ---------------------------------------------------------------------------

def _disjoint_instance(seed, multi_instance):
    """The instance of *seed* re-placed injectively on disjoint servers."""
    multi, _, _ = multi_instance(seed)
    total = multi.total_services
    platform = random_platform(total, seed=seed + 777, link_density=0.4)
    per_app = {}
    offset = 0
    for app in multi.members:
        nodes = app.graph.nodes
        per_app[app.name] = {
            svc: platform.names[offset + i] for i, svc in enumerate(nodes)
        }
        offset += len(nodes)
    mapping = multi.combined_mapping(per_app)
    assert mapping.is_injective
    return multi, platform, mapping, per_app


@pytest.mark.parametrize("seed", range(N_INSTANCES))
def test_injective_collapse_reproduces_single_app_values(seed, multi_instance):
    multi, platform, mapping, per_app = _disjoint_instance(seed, multi_instance)
    combined = CostModel(multi.combined_graph, platform, mapping)
    readout = ConcurrentCosts(multi, platform, mapping)
    for app in multi.members:
        single = CostModel(app.graph, platform, Mapping(per_app[app.name]))
        for svc in app.graph.nodes:
            namespaced = f"{app.name}.{svc}"
            assert combined.cin(namespaced) == single.cin(svc)
            assert combined.ccomp(namespaced) == single.ccomp(svc)
            assert combined.cout(namespaced) == single.cout(svc)
        for model in CommModel:
            # The per-app period readout is exactly the app's own bound.
            if model is CommModel.OVERLAP:
                assert readout.app_period(app.name) == (
                    single.period_lower_bound(model)
                )
        assert readout.app_latency(app.name) == single.latency_lower_bound()


# ---------------------------------------------------------------------------
# (c) Theorem-1 bound still achieved per application under OVERLAP
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(N_INSTANCES))
def test_theorem1_achieved_per_application(seed, multi_instance):
    multi, platform, mapping, per_app = _disjoint_instance(seed, multi_instance)
    readout = ConcurrentCosts(multi, platform, mapping)
    for app in multi.members:
        induced = Mapping(per_app[app.name])
        plan = schedule_period_overlap(
            app.graph, platform=platform, mapping=induced
        )
        # The concrete schedule achieves exactly the per-app readout ...
        assert plan.period == readout.app_period(app.name)
        # ... and passes the full Appendix-A validator on the shared
        # platform (the servers really are the platform's).
        assert plan.is_valid(), plan.validate().violations
