"""Tests for latency orchestration: serialized, exact, trees, fork-joins."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CommModel, CostModel, ExecutionGraph, make_application
from repro.scheduling import (
    exact_oneport_latency,
    minmax_two_permutations,
    oneport_latency_schedule,
    tree_latency,
    tree_latency_schedule,
)
from repro.scheduling.latency import greedy_second_permutation

F = Fraction


def small_app(n, data, max_cost=6):
    costs = [data.draw(st.integers(0, max_cost)) for _ in range(n)]
    sels = [
        data.draw(
            st.sampled_from([F(1, 2), F(1), F(2), F(1, 4), F(3)])
        )
        for _ in range(n)
    ]
    return make_application(
        [(f"C{i}", costs[i], sels[i]) for i in range(n)]
    )


def random_dag(app, data):
    names = list(app.names)
    edges = []
    for j in range(1, len(names)):
        for i in range(j):
            if data.draw(st.booleans()):
                edges.append((names[i], names[j]))
    return ExecutionGraph(app, edges)


class TestSerializedScheduler:
    def test_single_service(self):
        app = make_application([("a", 3, F(1, 2))])
        plan = oneport_latency_schedule(ExecutionGraph(app, []))
        # in (1) + comp (3) + out (1/2)
        assert plan.latency == F(9, 2)
        assert plan.validate().ok

    def test_chain(self):
        app = make_application([("a", 2, F(1, 2)), ("b", 4, 1)])
        plan = oneport_latency_schedule(ExecutionGraph.chain(app, ["a", "b"]))
        # 1 + 2 + 1/2 + 2 + 1/2 = 6
        assert plan.latency == 6
        assert plan.validate().ok

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_valid_for_all_models(self, data):
        n = data.draw(st.integers(2, 5))
        app = small_app(n, data)
        graph = random_dag(app, data)
        plan = oneport_latency_schedule(graph)
        for model in (CommModel.OVERLAP, CommModel.INORDER, CommModel.OUTORDER):
            report = plan.operation_list and plan
            from repro.core import validate

            rep = validate(graph, plan.operation_list, model)
            assert rep.ok, (model, rep.violations)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_at_least_critical_path(self, data):
        n = data.draw(st.integers(2, 5))
        app = small_app(n, data)
        graph = random_dag(app, data)
        plan = oneport_latency_schedule(graph)
        assert plan.latency >= CostModel(graph).latency_lower_bound()


class TestExactLatency:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_exact_le_greedy(self, data):
        n = data.draw(st.integers(2, 4))
        app = small_app(n, data)
        graph = random_dag(app, data)
        exact = exact_oneport_latency(graph)
        greedy = oneport_latency_schedule(graph).latency
        assert exact <= greedy
        assert exact >= CostModel(graph).latency_lower_bound()

    def test_exact_beats_bad_tie_breaks(self):
        """Fork with unequal branches: feeding the long branch first wins."""
        app = make_application(
            [("f", 1, 1), ("short", 1, 1), ("long", 10, 1), ("j", 1, 1)]
        )
        graph = ExecutionGraph(
            app,
            [("f", "short"), ("f", "long"), ("short", "j"), ("long", "j")],
        )
        exact = exact_oneport_latency(graph)
        # in 1 + f 1 + send long 1 + long 10 + recv(short early) + recv long 1
        # + j 1 + out 1 = 16
        assert exact == 16


class TestTreeLatency:
    def test_single_chain_matches_formula(self):
        app = make_application([("a", 2, F(1, 2)), ("b", 4, 1)])
        graph = ExecutionGraph.chain(app, ["a", "b"])
        assert tree_latency(graph) == 6

    def test_star_feeds_longest_first(self):
        app = make_application(
            [("r", 1, 1), ("x", 10, 1), ("y", 1, 1)]
        )
        graph = ExecutionGraph(app, [("r", "x"), ("r", "y")])
        # feed x first: x done at 1+1+1+10+1 = 14; y: 1+1+2+1+1 = 6 -> 14
        assert tree_latency(graph) == 14

    def test_rejects_non_forest(self):
        app = make_application([("a", 1, 1), ("b", 1, 1), ("c", 1, 1)])
        graph = ExecutionGraph(app, [("a", "c"), ("b", "c")])
        with pytest.raises(ValueError):
            tree_latency(graph)

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_matches_exact_search(self, data):
        """Algorithm 1 equals branch-and-bound over all orders (Prop 12)."""
        n = data.draw(st.integers(2, 5))
        app = small_app(n, data, max_cost=4)
        names = list(app.names)
        parents = {names[0]: None}
        for j in range(1, n):
            pick = data.draw(st.integers(-1, j - 1))
            parents[names[j]] = None if pick < 0 else names[pick]
        graph = ExecutionGraph.from_parents(app, parents)
        assert tree_latency(graph) == exact_oneport_latency(graph)

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_schedule_realises_value(self, data):
        n = data.draw(st.integers(2, 5))
        app = small_app(n, data, max_cost=4)
        names = list(app.names)
        parents = {names[0]: None}
        for j in range(1, n):
            pick = data.draw(st.integers(-1, j - 1))
            parents[names[j]] = None if pick < 0 else names[pick]
        graph = ExecutionGraph.from_parents(app, parents)
        plan = tree_latency_schedule(graph)
        assert plan.latency == tree_latency(graph)
        assert plan.validate().ok, plan.validate().violations

    def test_paper_literal_leaf_variant(self):
        """include_output=False reproduces the paper's Algorithm-1 leaf case."""
        app = make_application([("a", 3, F(2))])
        graph = ExecutionGraph(app, [])
        assert tree_latency(graph, include_output=False) == 4  # 1 + 3
        assert tree_latency(graph, include_output=True) == 6  # + sigma=2


class TestMinMaxTwoPermutations:
    def test_greedy_second_permutation(self):
        vals = [F(5), F(1), F(3)]
        best, mu = greedy_second_permutation(vals)
        assert sorted(mu) == [1, 2, 3]
        assert best == max(vals[i] + mu[i] for i in range(3))
        assert mu[0] == 1  # largest value gets smallest slot

    def test_uniform_values(self):
        best, l1, l2 = minmax_two_permutations([F(0)] * 4)
        # some i has lambda1(i) + lambda2(i) >= average 5
        assert best == 5

    def test_rn3dm_encoding(self):
        # B = n - A + n^2 with A = (2, 4, 6), n = 3 -> B = (10, 8, 6); the
        # average of lambda1 + B + lambda2 is n + n^2 = 12, reached exactly
        # iff lambda1 + lambda2 = A pointwise (A is solvable here).
        best, l1, l2 = minmax_two_permutations([F(10), F(8), F(6)])
        assert best == 12

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 12), min_size=2, max_size=5),
    )
    def test_exact_le_heuristic(self, values):
        vals = [F(v) for v in values]
        exact, _, _ = minmax_two_permutations(vals, exact=True)
        heur, _, _ = minmax_two_permutations(vals, exact=False)
        assert exact <= heur

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 12), min_size=2, max_size=5))
    def test_certificates_are_permutations(self, values):
        vals = [F(v) for v in values]
        best, l1, l2 = minmax_two_permutations(vals)
        n = len(vals)
        assert sorted(l1) == list(range(1, n + 1))
        assert sorted(l2) == list(range(1, n + 1))
        assert best == max(vals[i] + l1[i] + l2[i] for i in range(n))
