"""The documentation executes: doctests + README/docs code blocks."""

import doctest
import importlib
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent

#: Modules whose docstrings carry runnable examples (the docstring pass).
DOCTEST_MODULES = [
    "repro",
    "repro.concurrent",
    "repro.concurrent.multiapp",
    "repro.dynamic",
    "repro.core.numeric",
    "repro.core.platform",
    "repro.core.topology",
    "repro.optimize.hierarchy",
    "repro.optimize.placement",
    "repro.planner",
    "repro.planner.concurrent",
    "repro.planner.batch",
    "repro.planner.cache",
    "repro.planner.catalog",
    "repro.planner.facade",
    "repro.planner.registry",
    "repro.optimize.branch_and_bound",
    "repro.optimize.chains",
    "repro.optimize.evaluation",
    "repro.optimize.exhaustive",
    "repro.optimize.greedy",
    "repro.optimize.incremental",
    "repro.optimize.local_search",
    "repro.optimize.nocomm",
    "repro.scheduling.inorder",
    "repro.scheduling.latency",
    "repro.scheduling.oneport_overlap",
    "repro.scheduling.outorder",
    "repro.scheduling.overlap",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module_name} has no doctest examples"
    assert results.failed == 0


def _python_blocks(path: pathlib.Path):
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


@pytest.mark.parametrize("doc", ["README.md", "docs/api.md"])
def test_markdown_code_blocks_execute(doc):
    """Every ```python block in the docs runs (blocks share a namespace)."""
    blocks = _python_blocks(ROOT / doc)
    assert blocks, f"{doc} has no python examples"
    namespace = {}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"{doc}[block {i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - diagnostic
            pytest.fail(f"{doc} block {i} failed: {exc}\n{block}")
