"""RN3DM and 2-Partition source problems."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reductions.partition import (
    PartitionInstance,
    is_solvable as partition_solvable,
    solvable_instance as partition_solvable_instance,
    solve as partition_solve,
    unsolvable_instance as partition_unsolvable_instance,
)
from repro.reductions.rn3dm import (
    RN3DMInstance,
    brute_force_solve,
    is_solvable,
    solvable_instance,
    solve,
    unsolvable_instance,
)


class TestRN3DM:
    def test_simple_solvable(self):
        inst = RN3DMInstance((2, 4, 6))
        sol = solve(inst)
        assert sol is not None
        assert inst.check(*sol)

    def test_known_unsolvable(self):
        assert not is_solvable(RN3DMInstance((2, 2, 8, 8)))

    def test_malformed_sum_rejected_by_solver(self):
        assert solve(RN3DMInstance((2, 2, 2))) is None  # sum != n(n+1)

    def test_out_of_range_rejected(self):
        assert not RN3DMInstance((1, 5, 6)).is_well_formed()

    def test_check_rejects_bad_certificates(self):
        inst = RN3DMInstance((2, 4, 6))
        assert not inst.check([1, 1, 3], [1, 3, 3])
        assert not inst.check([1, 2, 3], [2, 1, 3])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RN3DMInstance(())

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 7), st.integers(0, 1000))
    def test_generated_solvable_instances(self, n, seed):
        inst = solvable_instance(n, seed)
        assert inst.is_well_formed()
        sol = solve(inst)
        assert sol is not None and inst.check(*sol)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 6), st.integers(0, 100))
    def test_generated_unsolvable_instances(self, n, seed):
        inst = unsolvable_instance(n, seed)
        assert inst.is_well_formed()
        assert not is_solvable(inst)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 6), st.integers(0, 500))
    def test_solver_matches_brute_force(self, n, seed):
        inst = solvable_instance(n, seed)
        assert (solve(inst) is None) == (brute_force_solve(inst) is None)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(2, 12), min_size=2, max_size=6))
    def test_solver_matches_brute_force_arbitrary(self, a):
        inst = RN3DMInstance(tuple(a))
        assert (solve(inst) is None) == (brute_force_solve(inst) is None)

    def test_small_n_all_well_formed_are_solvable(self):
        """For n <= 3 every well-formed instance is solvable (hence the
        reduction tests need n >= 4 for the negative direction)."""
        import itertools

        for n in (2, 3):
            for a in itertools.product(range(2, 2 * n + 1), repeat=n):
                inst = RN3DMInstance(a)
                if inst.is_well_formed():
                    assert is_solvable(inst), a


class TestPartition:
    def test_simple(self):
        sol = partition_solve(PartitionInstance((3, 5, 3, 5)))
        assert sol is not None
        assert sum(3 if i in (0, 2) else 5 for i in sol) in (8,)

    def test_odd_total_unsolvable(self):
        assert not partition_solvable(PartitionInstance((3, 5, 3, 6)))

    def test_even_but_unsolvable(self):
        assert not partition_solvable(PartitionInstance((2, 3, 4, 11)))

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            PartitionInstance((1, 0))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 4).map(lambda k: 2 * k), st.integers(0, 200))
    def test_generators(self, n, seed):
        s = partition_solvable_instance(n, seed)
        assert partition_solvable(s)
        u = partition_unsolvable_instance(n, seed)
        assert not partition_solvable(u)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(1, 30), min_size=2, max_size=10))
    def test_solution_is_half_sum(self, xs):
        inst = PartitionInstance(tuple(xs))
        sol = partition_solve(inst)
        if sol is not None:
            assert sum(xs[i] for i in sol) * 2 == inst.total
