"""Topology-aware platforms: generators, contention, placement, parity.

Covers the structured-platform stack end to end:

* generator invariants — symmetric bandwidths, positive capacities,
  distinct fingerprints across shapes (the property sweep);
* the strict :meth:`~repro.core.Platform.bandwidth` lookup contract;
* flat-clique regression — clique platforms keep their historical key
  shape and ``unit`` collapse, bit for bit;
* link contention priced identically by all three cost tiers (exact
  :class:`~repro.core.CostModel`, float :class:`~repro.core.FloatCosts`,
  batched :class:`~repro.core.MappingBatch`/:class:`~repro.core.ForestBatch`);
* certified searches on tree/torus platforms bit-for-bit equal to the
  all-Fraction tier;
* the hierarchical placement seed and the incremental-evaluator gates.
"""

import random
from fractions import Fraction as F

import numpy as np
import pytest

from repro import make_application
from repro.core import (
    CommModel,
    CostModel,
    Exactness,
    ExecutionGraph,
    FlatTopology,
    FloatCosts,
    ForestBatch,
    Mapping,
    MappingBatch,
    Platform,
    TorusTopology,
    TreeTopology,
    link_flow_counts,
    platform_fingerprint,
)
from repro.optimize import Effort, greedy_mapping, hierarchical_seed
from repro.optimize.incremental import (
    FullPlacementCosts,
    IncrementalSharedCosts,
    period_delta,
    placement_evaluator,
)
from repro.optimize.placement import (
    iter_mappings,
    iter_shared_mappings,
    optimize_mapping,
    optimize_shared_mapping,
)
from repro.planner import solve, solve_key
from repro.workloads.generators import random_application, random_execution_graph

MODELS = [CommModel.OVERLAP, CommModel.INORDER, CommModel.OUTORDER]

TREE_SHAPES = [
    dict(racks=2, servers_per_rack=2),
    dict(racks=2, servers_per_rack=3),
    dict(racks=3, servers_per_rack=2),
    dict(racks=2, servers_per_rack=2, up_bw=F(1, 4)),
    dict(racks=2, servers_per_rack=2, rack_bw=F(1, 2)),
    dict(racks=2, servers_per_rack=2, speed2=F(2)),
    dict(racks=2, servers_per_rack=2, shared=False),
]

TORUS_SHAPES = [
    dict(dims=(2, 2)),
    dict(dims=(3, 2)),
    dict(dims=(2, 3)),
    dict(dims=(4,)),
    dict(dims=(2, 2, 2)),
    dict(dims=(2, 2), bw=F(1, 2)),
    dict(dims=(2, 2), shared=False),
]


def _platforms():
    return [Platform(topology=TreeTopology(**kw)) for kw in TREE_SHAPES] + [
        Platform(topology=TorusTopology(**kw)) for kw in TORUS_SHAPES
    ]


class TestGeneratorProperties:
    """Satellite: generated topologies are well-formed and distinct."""

    def test_bandwidths_symmetric_and_positive(self):
        for platform in _platforms():
            topo = platform.topology
            pairs = topo.pair_bandwidths()
            for (u, v), bw in pairs.items():
                assert bw > 0, (topo.key(), u, v)
                assert pairs[(v, u)] == bw, (topo.key(), u, v)
                assert platform.bandwidth(u, v) == bw

    def test_capacities_positive_and_routes_within_range(self):
        for platform in _platforms():
            topo = platform.topology
            caps = topo.link_capacities()
            assert all(c > 0 for c in caps)
            names = platform.names
            for u in names:
                for v in names:
                    if u == v:
                        continue
                    for link in topo.route(u, v):
                        assert 0 <= link < len(caps), (topo.key(), u, v)

    def test_route_bottleneck_equals_pair_bandwidth(self):
        for platform in _platforms():
            topo = platform.topology
            caps = topo.link_capacities()
            for (u, v), bw in topo.pair_bandwidths().items():
                route = topo.route(u, v)
                assert route, (u, v)
                assert min(caps[l] for l in route) == bw

    def test_fingerprints_distinct_across_shapes(self):
        platforms = _platforms()
        keys = [p.key() for p in platforms]
        assert len(set(keys)) == len(keys)
        # Uncontended uniform shapes collapse to the "unit" sentinel (they
        # really are interchangeable); everything else stays distinct.
        prints = [p.fingerprint() for p in platforms if not p.is_unit]
        assert len(set(prints)) == len(prints)

    def test_solve_keys_distinct_across_specs(self):
        app = make_application([("A", 1, 1), ("B", 2, 1)])
        specs = [
            "tree:racks=2,servers=2",
            "tree:racks=2,servers=2,up_bw=1/4",
            "tree:racks=2,servers=2,shared=0",
            "torus:dims=2x2",
            "torus:dims=2x2,bw=1/2",
        ]
        keys = [solve_key(app, platform=spec) for spec in specs]
        assert len(set(keys)) == len(keys)


class TestStrictBandwidth:
    """Satellite: strict lookups raise; ``lenient`` restores the default."""

    def setup_method(self):
        self.platform = Platform.homogeneous(3)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            self.platform.bandwidth("S1", "nope")

    def test_self_pair_raises_strict_returns_lenient(self):
        with pytest.raises(KeyError):
            self.platform.bandwidth("S1", "S1")
        assert self.platform.bandwidth("S1", "S1", lenient=True) == 1

    def test_world_world_raises_strict(self):
        from repro.core.platform import INPUT, OUTPUT

        with pytest.raises(KeyError):
            self.platform.bandwidth(INPUT, OUTPUT)
        assert self.platform.bandwidth(INPUT, OUTPUT, lenient=True) == 1
        # World <-> server stays a real (dedicated) link.
        assert self.platform.bandwidth(INPUT, "S1") == 1
        assert self.platform.bandwidth("S2", OUTPUT) == 1


class TestFlatRegression:
    """Clique platforms are bit-for-bit what they were before topologies."""

    def test_clique_key_has_no_topology_component(self):
        platform = Platform.of(speeds=[1, 2], links={("S1", "S2"): F(1, 2)})
        assert all(
            not (isinstance(part, tuple) and part and part[0] == "topology")
            for part in platform.key()
        )
        structured = Platform(topology=TreeTopology(racks=1, servers_per_rack=2))
        assert any(
            isinstance(part, tuple) and part and part[0] == "topology"
            for part in structured.key()
        )

    def test_explicit_flat_topology_matches_homogeneous(self):
        flat = Platform(topology=FlatTopology(("S1", "S2", "S3")))
        assert flat == Platform.homogeneous(3)
        assert flat.is_unit and not flat.has_contention
        assert platform_fingerprint(flat) == "unit"

    def test_uncontended_uniform_tree_is_unit(self):
        # Satellite: unit collapse must consult the topology.  A switch
        # tree with uniform speeds/bandwidths and no sharing is a clique
        # in disguise; the same tree with sharing is not.
        calm = Platform(
            topology=TreeTopology(racks=2, servers_per_rack=2, shared=False)
        )
        assert calm.is_unit and calm.is_homogeneous
        hot = Platform(topology=TreeTopology(racks=2, servers_per_rack=2))
        assert hot.has_contention
        assert not hot.is_unit
        assert not hot.is_homogeneous
        assert platform_fingerprint(hot) != "unit"

    def test_flat_solve_results_unchanged_shape(self):
        app = make_application([("A", 2, F(1, 2)), ("B", 3, 1), ("C", 1, 2)])
        unit = solve(app).value
        hom = solve(app, platform="hom:n=3").value
        assert unit == hom


class TestExactContention:
    """CostModel prices shared links by dividing capacity among flows."""

    def _two_cross_flows(self):
        app = make_application(
            [("A", 1, 1), ("B", 1, 1), ("C", 1, 1), ("D", 1, 1)]
        )
        graph = ExecutionGraph(app, [("A", "C"), ("B", "D")])
        platform = Platform(topology=TreeTopology(racks=2, servers_per_rack=2))
        mapping = Mapping(
            {"A": "R0N0", "B": "R0N1", "C": "R1N0", "D": "R1N1"}
        )
        return graph, platform, mapping

    def test_two_flows_halve_the_shared_uplinks(self):
        graph, platform, mapping = self._two_cross_flows()
        costs = CostModel(graph, platform, mapping)
        # Each uplink carries both flows: effective bandwidth 1/2.
        assert costs.link_bandwidth("A", "C") == F(1, 2)
        assert costs.link_bandwidth("B", "D") == F(1, 2)
        assert platform.bandwidth("R0N0", "R1N0") == 1  # uncontended quote

    def test_link_flow_counts(self):
        graph, platform, mapping = self._two_cross_flows()
        flows = [(mapping.server(u), mapping.server(v)) for u, v in graph.edges]
        counts = link_flow_counts(platform, flows)
        caps = platform.link_capacities()
        # 4 access links used once each, both uplinks used twice.
        assert sorted(counts.values()) == [1, 1, 1, 1, 2, 2]
        assert len(caps) == 6

    def test_colocated_edges_are_not_flows(self):
        app = make_application([("A", 1, 1), ("B", 1, 1), ("C", 1, 1)])
        graph = ExecutionGraph(app, [("A", "B"), ("A", "C")])
        platform = Platform(topology=TreeTopology(racks=2, servers_per_rack=2))
        shared_map = Mapping.shared({"A": "R0N0", "B": "R0N0", "C": "R1N0"})
        costs = CostModel(graph, platform, shared_map)
        # Only A->C crosses servers; it rides alone at full route bottleneck.
        assert costs.link_bandwidth("A", "C") == 1

    def test_unshared_topology_matches_static_quotes(self):
        graph, _, mapping = self._two_cross_flows()
        platform = Platform(
            topology=TreeTopology(racks=2, servers_per_rack=2, shared=False)
        )
        costs = CostModel(graph, platform, mapping)
        assert costs.link_bandwidth("A", "C") == platform.bandwidth(
            "R0N0", "R1N0"
        )


def _structured_instance(seed, *, max_services=4):
    """Random ``(graph, platform, mapping)`` on a tree or torus platform."""
    rng = random.Random(seed)
    if seed % 2:
        topo = TreeTopology(
            racks=rng.randrange(2, 4),
            servers_per_rack=rng.randrange(2, 4),
            up_bw=F(1, rng.randrange(1, 5)),
            rack_bw=F(1, rng.randrange(1, 3)),
            speed2=F(rng.randrange(1, 4)),
            shared=seed % 4 != 3,
        )
    else:
        dims = (rng.randrange(2, 4), rng.randrange(2, 4))
        topo = TorusTopology(
            dims, bw=F(1, rng.randrange(1, 4)), shared=seed % 4 != 2
        )
    platform = Platform(topology=topo)
    n = rng.randrange(2, min(max_services, len(platform)) + 1)
    app = random_application(n, seed=seed, filter_fraction=rng.uniform(0.2, 0.9))
    graph = random_execution_graph(app, seed=seed + 1, density=rng.uniform(0.2, 0.7))
    order = rng.sample(range(len(platform)), n)
    mapping = Mapping(
        {svc: platform.names[order[i]] for i, svc in enumerate(graph.nodes)}
    )
    return graph, platform, mapping


class TestFloatParity:
    """FloatCosts tracks the exact tier within CERT_EPS under contention."""

    def test_period_and_latency_sweep(self):
        for seed in range(80):
            graph, platform, mapping = _structured_instance(seed)
            exact = CostModel(graph, platform, mapping)
            fast = FloatCosts(graph, platform, mapping)
            model = MODELS[seed % 3]
            e = exact.period_lower_bound(model)
            f = fast.period_lower_bound(model)
            assert abs(f - float(e)) <= 1e-9 * max(1.0, abs(float(e))), seed
            el = exact.latency_lower_bound()
            fl = fast.latency_lower_bound()
            assert abs(fl - float(el)) <= 1e-9 * max(1.0, abs(float(el))), seed


class TestBatchedParity:
    """Batched kernels == scalar FloatCosts, bit for bit, under contention."""

    def test_mapping_batch_full_enumeration(self):
        for seed in range(40):
            graph, platform, _ = _structured_instance(seed, max_services=3)
            mappings = list(iter_mappings(graph.nodes, platform))
            if len(mappings) > 400:
                mappings = mappings[::7]
            for kind in ("period", "latency"):
                model = MODELS[seed % 3]
                batch = MappingBatch(graph, platform, kind=kind, model=model)
                rows = np.stack([batch.encode(m) for m in mappings])
                values = batch.values(rows)
                for k, m in enumerate(mappings):
                    fast = FloatCosts(graph, platform, m)
                    scalar = (
                        fast.period_lower_bound(model)
                        if kind == "period"
                        else fast.latency_lower_bound()
                    )
                    assert values[k] == scalar, (seed, kind, model, k)

    def test_forest_batch_pinned_mapping(self, forest_graph):
        for seed in range(40):
            rng = random.Random(seed)
            _, platform, _ = _structured_instance(seed, max_services=4)
            n = rng.randrange(2, 5)
            app = random_application(n, seed=seed + 50)
            order = rng.sample(range(len(platform)), n)
            mapping = Mapping(
                {svc: platform.names[order[i]] for i, svc in enumerate(app.names)}
            )
            model = MODELS[seed % 3]
            batch = ForestBatch(app, model, platform, mapping)
            graphs = [forest_graph(app, rng) for _ in range(20)]
            rows = np.stack([batch.encode(g) for g in graphs])
            valid, values = batch.periods(rows)
            assert valid.all(), (seed, model)
            for k, g in enumerate(graphs):
                scalar = FloatCosts(g, platform, mapping).period_lower_bound(model)
                assert values[k] == scalar, (seed, model, k)


class TestCertifiedBitForBit:
    """Certified searches on structured platforms == the all-Fraction tier."""

    def test_optimize_mapping_exhaustive_and_local_search(self):
        from repro.optimize.placement import clear_placement_memo

        for seed in range(12):
            graph, platform, _ = _structured_instance(seed, max_services=3)
            model = MODELS[seed % 3]
            for kwargs in (
                {},  # exhaustive (small spaces)
                {"exhaustive_limit": 0},  # force seed + local search
            ):
                results = {}
                for exactness in (Exactness.EXACT, Exactness.CERTIFIED):
                    clear_placement_memo()
                    results[exactness] = optimize_mapping(
                        graph, "period", model, Effort.BOUND, platform,
                        exactness=exactness, **kwargs,
                    )
                exact_v, exact_m = results[Exactness.EXACT]
                cert_v, cert_m = results[Exactness.CERTIFIED]
                assert cert_v == exact_v, (seed, model, kwargs)
                assert cert_m.items() == exact_m.items(), (seed, model, kwargs)

    def test_optimize_shared_mapping_exhaustive(self):
        platform = Platform(
            topology=TreeTopology(racks=2, servers_per_rack=2, up_bw=F(1, 2))
        )
        for seed in range(6):
            rng = random.Random(seed)
            n = rng.randrange(2, 4)
            app = random_application(n, seed=seed + 30)
            graph = random_execution_graph(app, seed=seed + 31, density=0.5)
            model = MODELS[seed % 3]
            value, mapping = optimize_shared_mapping(graph, model, platform)
            brute = min(
                _shared_value(graph, platform, m, model)
                for m in iter_shared_mappings(graph.nodes, platform)
            )
            assert value == brute, (seed, model)
            assert _shared_value(graph, platform, mapping, model) == value

    def test_solve_branch_and_bound_certified(self):
        app = make_application(
            [("A", 2, F(1, 2)), ("B", 3, 1), ("C", 1, 2), ("D", 2, 1)]
        )
        for spec in ("tree:racks=2,servers=2,up_bw=1/2", "torus:dims=2x2,bw=1/2"):
            exact = solve(
                app, method="branch-and-bound", platform=spec, exactness="exact"
            )
            cert = solve(
                app, method="branch-and-bound", platform=spec,
                exactness="certified",
            )
            assert cert.value == exact.value, spec
            assert cert.graph.edges == exact.graph.edges, spec


def _shared_value(graph, platform, mapping, model):
    from repro.optimize.incremental import exact_placement_value

    return exact_placement_value(
        graph, platform, mapping, model=model, shared=True
    )


class TestIncrementalGates:
    """Contention invalidates cached deltas; the full evaluator takes over."""

    def _contended(self):
        graph, platform, mapping = TestExactContention()._two_cross_flows()
        return graph, platform, mapping

    def test_period_delta_declines_contended_platforms(self):
        graph, platform, mapping = self._contended()
        assert (
            period_delta(graph, CommModel.OVERLAP, Effort.BOUND, platform, mapping)
            is None
        )

    def test_incremental_shared_costs_refuses(self):
        graph, platform, _ = self._contended()
        shared = Mapping.shared(
            {n: platform.names[0] for n in graph.nodes}
        )
        with pytest.raises(ValueError, match="contention|contended"):
            IncrementalSharedCosts(graph, platform, shared)

    def test_placement_evaluator_dispatches_full_recompute(self):
        graph, platform, mapping = self._contended()
        ev = placement_evaluator(graph, platform, mapping)
        assert isinstance(ev, FullPlacementCosts)

    def test_full_placement_costs_scores_match_recompute(self):
        for seed in range(15):
            graph, platform, mapping = _structured_instance(seed)
            ev = placement_evaluator(graph, platform, mapping)
            base = CostModel(graph, platform, mapping).period_lower_bound(
                CommModel.OVERLAP
            )
            assert ev.value() == base, seed
            rng = random.Random(seed)
            nodes = list(graph.nodes)
            svc = rng.choice(nodes)
            free = [s for s in platform.names if s not in ev.assignment.values()]
            target = rng.choice(free) if free else ev.assignment[svc]
            trial = ev.score_reassign(svc, target)
            moved = dict(ev.assignment)
            moved[svc] = target
            expect = CostModel(
                graph, platform, Mapping(moved)
            ).period_lower_bound(CommModel.OVERLAP)
            if trial is not None:
                assert abs(float(trial) - float(expect)) <= 1e-9 * max(
                    1.0, float(expect)
                ), seed
            ev.apply_reassign(svc, target)
            assert ev.value() == expect, seed


class TestHierarchicalSeed:
    """The topology-partitioned seed: injective, capacity-safe, effective."""

    def test_seed_is_injective_and_capacity_respecting(self):
        for seed in range(20):
            graph, platform, _ = _structured_instance(seed, max_services=5)
            m = hierarchical_seed(graph, platform)
            servers = [m.server(n) for n in graph.nodes]
            assert len(set(servers)) == len(servers), seed
            for _label, names in platform.topology.groups():
                used = sum(1 for s in servers if s in names)
                assert used <= len(names), seed

    def test_flat_platform_reduces_to_greedy(self):
        app = make_application([("A", 3, 1), ("B", 1, 2), ("C", 2, F(1, 2))])
        graph = ExecutionGraph(app, [("A", "B")])
        platform = Platform.of(speeds=[1, 2, 4])
        assert hierarchical_seed(graph, platform).items() == greedy_mapping(
            graph, platform
        ).items()

    def test_chain_pairs_share_a_rack(self):
        app = make_application(
            [("A", 1, 2), ("B", 1, 1), ("C", 1, 2), ("D", 1, 1)]
        )
        graph = ExecutionGraph(app, [("A", "B"), ("C", "D")])
        platform = Platform(
            topology=TreeTopology(racks=2, servers_per_rack=2, up_bw=F(1, 4))
        )
        m = hierarchical_seed(graph, platform)
        assert m.server("A")[:2] == m.server("B")[:2]
        assert m.server("C")[:2] == m.server("D")[:2]

    def test_hierarchical_strategy_never_loses_to_flat(self):
        from repro.optimize.placement import clear_placement_memo

        for seed in range(8):
            graph, platform, _ = _structured_instance(seed, max_services=4)
            clear_placement_memo()
            flat_v, _ = optimize_mapping(
                graph, "period", CommModel.OVERLAP, Effort.BOUND, platform,
                exhaustive_limit=0, strategy="flat",
            )
            clear_placement_memo()
            hier_v, _ = optimize_mapping(
                graph, "period", CommModel.OVERLAP, Effort.BOUND, platform,
                exhaustive_limit=0, strategy="hierarchical",
            )
            # Both run the same local search from different seeds; the
            # topology-aware seed must not end in a worse local optimum
            # on these instances (regression guard for the heuristic).
            assert hier_v <= flat_v * F(11, 10), seed

    def test_bad_strategy_rejected(self):
        graph, platform, _ = _structured_instance(1)
        with pytest.raises(ValueError, match="strategy"):
            optimize_mapping(
                graph, "period", CommModel.OVERLAP, Effort.BOUND, platform,
                strategy="bogus",
            )


class TestPlannerIntegration:
    """The hierarchical solver and topology specs through the facade."""

    def test_solve_hierarchical_on_tree(self):
        app = make_application(
            [("A", 1, 2), ("B", 2, 1), ("C", 1, 2), ("D", 3, F(1, 2)),
             ("E", 1, 1), ("F", 2, 1)]
        )
        spec = "tree:racks=3,servers=2,up_bw=1/4"
        hier = solve(app, method="hierarchical", platform=spec)
        assert hier.stats.extras.get("hierarchical") is True
        ls = solve(app, method="local-search", platform=spec)
        assert hier.value <= ls.value

    def test_solver_falls_back_without_structure(self):
        app = make_application([("A", 1, 2), ("B", 2, 1)])
        r = solve(app, method="hierarchical")
        assert r.stats.extras.get("hierarchical") is False
        assert r.value == solve(app, method="local-search").value

    def test_certified_solve_matches_exact_on_torus(self):
        app = make_application([("A", 2, F(1, 2)), ("B", 3, 1), ("C", 1, 2)])
        spec = "torus:dims=2x2,bw=1/2"
        exact = solve(app, method="hierarchical", platform=spec, exactness="exact")
        cert = solve(
            app, method="hierarchical", platform=spec, exactness="certified"
        )
        assert cert.value == exact.value
