"""Workload generators, analysis helpers and the complexity table."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    RESULTS,
    SPECIAL_CASES,
    PeriodBounds,
    bound_summary,
    count_by_complexity,
    format_value,
    latency_gap,
    markdown_table,
    period_gap,
    render_table,
    text_table,
)
from repro.core import CommModel, CostModel, ExecutionGraph
from repro.scheduling import inorder_schedule, schedule_period_overlap
from repro.workloads.generators import (
    fork_join_instance,
    layered_instance,
    random_application,
    random_chain,
    random_execution_graph,
    random_forest,
    random_services,
    star_instance,
)

F = Fraction


class TestGenerators:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 20), st.integers(0, 1000))
    def test_random_services_shape(self, n, seed):
        specs = random_services(n, seed)
        assert len(specs) == n
        for name, cost, sel in specs:
            assert cost >= F(1, 16)
            assert sel > 0

    def test_seed_determinism(self):
        a = random_services(5, 42)
        b = random_services(5, 42)
        assert a == b

    def test_random_application_precedence(self):
        app = random_application(6, seed=1, precedence_density=0.5)
        assert app.has_precedence

    def test_random_graph_respects_precedence(self):
        app = random_application(5, seed=2, precedence_density=0.4)
        g = random_execution_graph(app, seed=3)
        for a, b in app.precedence:
            assert a in g.ancestors(b)

    def test_random_forest_is_forest(self):
        app = random_application(8, seed=4)
        assert random_forest(app, seed=5).is_forest

    def test_random_chain_is_chain(self):
        app = random_application(6, seed=6)
        assert random_chain(app, seed=7).is_chain

    def test_forest_rejects_precedence(self):
        app = random_application(4, seed=8, precedence_density=0.9)
        with pytest.raises(ValueError):
            random_forest(app)

    def test_fork_join_shape(self):
        app, g = fork_join_instance(4, seed=9)
        assert len(g.entry_nodes) == 1
        assert len(g.exit_nodes) == 1
        assert len(app) == 6

    def test_layered_shape(self):
        app, g = layered_instance([2, 3, 2], seed=10)
        assert len(app) == 7
        assert len(g.edges) == 2 * 3 + 3 * 2

    def test_star_shape(self):
        app, g = star_instance(5, seed=11)
        assert len(g.successors("hub")) == 5

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            random_services(0)
        with pytest.raises(ValueError):
            random_services(3, cost_range=(5, 1))


class TestBounds:
    def test_period_bounds_ordering(self):
        app = random_application(5, seed=12)
        g = random_execution_graph(app, seed=13)
        b = PeriodBounds.of(g)
        assert b.overlap <= b.inorder == b.outorder

    def test_gaps_nonnegative(self):
        app = random_application(4, seed=14)
        g = random_forest(app, seed=15)
        plan = schedule_period_overlap(g)
        assert period_gap(plan) == 0  # Theorem 1: bound met
        inplan = inorder_schedule(g)
        assert period_gap(inplan) >= 0
        assert latency_gap(inplan) >= 0

    def test_bound_summary_keys(self):
        app = random_application(4, seed=16)
        g = random_forest(app, seed=17)
        summary = bound_summary(g)
        assert set(summary) == {
            "period_lb_overlap",
            "period_lb_oneport",
            "period_lb_comm_only",
            "latency_lb",
            "total_work",
            "total_communication",
        }
        assert summary["period_lb_overlap"] <= summary["period_lb_oneport"]


class TestComplexityTable:
    def test_twelve_results(self):
        assert len(RESULTS) == 12
        assert count_by_complexity() == (1, 11)

    def test_every_combination_present(self):
        combos = {(r.objective, r.layer, r.model) for r in RESULTS}
        assert len(combos) == 12

    def test_render(self):
        table = render_table()
        assert "OVERLAP" in table and "NP-hard" in table
        assert len(table.splitlines()) == 14  # header + rule + 12 rows

    def test_special_cases_listed(self):
        names = [ref for _, ref, _ in SPECIAL_CASES]
        assert any("Proposition 8" in r for r in names)
        assert any("Proposition 12" in r for r in names)


class TestReporting:
    def test_format_value(self):
        assert format_value(F(23, 3)) == "23/3"
        assert format_value(F(4, 1)) == "4"
        assert format_value(F(10**7, 3 * 10**6 + 1)).startswith("3.33")
        assert format_value("x") == "x"
        assert format_value(2.5) == "2.5"

    def test_text_table_alignment(self):
        out = text_table(["k", "v"], [["a", F(1, 2)], ["bb", 10]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("k")

    def test_markdown_table(self):
        out = markdown_table(["a", "b"], [[1, 2]])
        assert out.splitlines()[0] == "| a | b |"
        assert "| 1 | 2 |" in out
