"""Chain greedy algorithms (Props 8 and 16) versus brute force."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CommModel, CostModel, ExecutionGraph, make_application
from repro.optimize import (
    brute_force_chain_latency,
    brute_force_chain_period,
    chain_latency,
    chain_period,
    greedy_chain_latency_order,
    greedy_chain_period_order,
    minlatency_chain,
    minperiod_chain,
)
from repro.scheduling import tree_latency

F = Fraction


@st.composite
def rand_app(draw, max_n=5):
    n = draw(st.integers(2, max_n))
    specs = []
    for i in range(n):
        cost = draw(st.integers(0, 10))
        sel = draw(
            st.sampled_from(
                [F(1, 4), F(1, 2), F(3, 4), F(1), F(3, 2), F(2), F(3)]
            )
        )
        specs.append((f"C{i}", cost, sel))
    return make_application(specs)


class TestChainEvaluators:
    def test_chain_period_matches_cost_model(self):
        app = make_application([("a", 2, F(1, 2)), ("b", 4, 2), ("c", 1, 1)])
        order = ["a", "b", "c"]
        graph = ExecutionGraph.chain(app, order)
        cm = CostModel(graph)
        for model in (CommModel.OVERLAP, CommModel.INORDER):
            assert chain_period(app, order, model) == cm.period_lower_bound(model)

    @settings(max_examples=40, deadline=None)
    @given(rand_app())
    def test_chain_latency_matches_tree_algorithm(self, app):
        order = list(app.names)
        graph = ExecutionGraph.chain(app, order)
        assert chain_latency(app, order) == tree_latency(graph)

    @settings(max_examples=40, deadline=None)
    @given(rand_app())
    def test_chain_latency_matches_critical_path(self, app):
        order = list(app.names)
        graph = ExecutionGraph.chain(app, order)
        assert chain_latency(app, order) == CostModel(graph).latency_lower_bound()


class TestProposition8:
    @settings(max_examples=60, deadline=None)
    @given(rand_app(), st.sampled_from(list(CommModel)))
    def test_greedy_is_optimal(self, app, model):
        greedy_order = greedy_chain_period_order(app, model)
        greedy_val = chain_period(app, greedy_order, model)
        best_val, _ = brute_force_chain_period(app, model)
        assert greedy_val == best_val

    def test_filters_before_expanders(self):
        app = make_application(
            [("e", 1, 2), ("f", 100, F(1, 2))]
        )
        order = greedy_chain_period_order(app, CommModel.INORDER)
        assert order == ["f", "e"]

    def test_minperiod_chain_returns_chain(self):
        app = make_application([("a", 1, F(1, 2)), ("b", 2, 2), ("c", 3, 1)])
        val, graph = minperiod_chain(app, CommModel.OVERLAP)
        assert graph.is_chain
        assert val == chain_period(app, graph.topological_order, CommModel.OVERLAP)


class TestProposition16:
    @settings(max_examples=60, deadline=None)
    @given(rand_app())
    def test_greedy_is_optimal(self, app):
        greedy_order = greedy_chain_latency_order(app)
        greedy_val = chain_latency(app, greedy_order)
        best_val, _ = brute_force_chain_latency(app)
        assert greedy_val == best_val

    def test_ratio_rule_order(self):
        # (1 - sigma)/(1 + c): strong filter cheap first
        app = make_application(
            [("weak", 1, F(9, 10)), ("strong", 1, F(1, 10))]
        )
        order = greedy_chain_latency_order(app)
        assert order == ["strong", "weak"]

    def test_minlatency_chain_returns_chain(self):
        app = make_application([("a", 1, F(1, 2)), ("b", 2, 2)])
        val, graph = minlatency_chain(app)
        assert graph.is_chain
        assert val == chain_latency(app, graph.topological_order)
