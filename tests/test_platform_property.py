"""Randomized property test for Theorem 1 on homogeneous & het platforms.

Theorem 1 states the OVERLAP period lower bound
``max_k max(Cin(k), Ccomp(k), Cout(k))`` is *achievable*; the platform
refactor claims the construction generalises verbatim once the three
quantities are expressed as times (sizes over bandwidths, work over
speeds).  This property test drives ``schedule_period_overlap`` over 200
random execution graphs — half evaluated on the unit platform, all on a
random heterogeneous platform with a random injective mapping — and checks
that the built operation list (a) has exactly the bound as its period and
(b) passes the full Appendix-A validator.
"""

from fractions import Fraction

import pytest

from repro.core import CommModel, CostModel, Platform
from repro.scheduling.overlap import overlap_period_bound, schedule_period_overlap

N_GRAPHS = 200


@pytest.mark.parametrize("seed", range(N_GRAPHS))
def test_overlap_schedule_meets_theorem1_bound(seed, het_instance):
    graph, platform, mapping = het_instance(seed)

    # Heterogeneous platform with a random mapping.
    het_costs = CostModel(graph, platform, mapping)
    het_bound = het_costs.period_lower_bound(CommModel.OVERLAP)
    het_plan = schedule_period_overlap(graph, platform=platform, mapping=mapping)
    assert het_plan.period == het_bound
    assert het_plan.is_valid(), het_plan.validate().violations

    # The unit platform must agree with the platform-free evaluation (and
    # with the paper's normalised construction) — checked on half the
    # seeds to keep the sweep fast.
    if seed % 2 == 0:
        hom = Platform.homogeneous(len(graph.nodes))
        hom_bound = overlap_period_bound(graph, hom)
        assert hom_bound == CostModel(graph).period_lower_bound(CommModel.OVERLAP)
        hom_plan = schedule_period_overlap(graph, platform=hom)
        assert hom_plan.period == hom_bound
        assert hom_plan.is_valid(), hom_plan.validate().violations


def test_theorem1_bound_scales_inversely_with_uniform_speedup(het_instance):
    """Doubling every speed and bandwidth exactly halves the optimal period."""
    for seed in range(10):
        graph, _, _ = het_instance(seed)
        slow = Platform.homogeneous(len(graph.nodes))
        fast = Platform.homogeneous(len(graph.nodes), speed=2, bandwidth=2)
        assert overlap_period_bound(graph, fast) * 2 == overlap_period_bound(graph, slow)
