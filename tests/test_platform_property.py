"""Randomized property test for Theorem 1 on homogeneous & het platforms.

Theorem 1 states the OVERLAP period lower bound
``max_k max(Cin(k), Ccomp(k), Cout(k))`` is *achievable*; the platform
refactor claims the construction generalises verbatim once the three
quantities are expressed as times (sizes over bandwidths, work over
speeds).  This property test drives ``schedule_period_overlap`` over 200
random execution graphs — half evaluated on the unit platform, all on a
random heterogeneous platform with a random injective mapping — and checks
that the built operation list (a) has exactly the bound as its period and
(b) passes the full Appendix-A validator.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.core import CommModel, CostModel, Mapping, Platform
from repro.scheduling.overlap import overlap_period_bound, schedule_period_overlap
from repro.workloads.generators import (
    random_application,
    random_execution_graph,
    random_platform,
)

N_GRAPHS = 200


def _instance(seed: int):
    """A random graph plus a random het platform and injective mapping."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    app = random_application(n, seed=seed, filter_fraction=float(rng.uniform(0.2, 0.9)))
    graph = random_execution_graph(app, seed=seed + 1, density=float(rng.uniform(0.1, 0.7)))
    n_servers = n + int(rng.integers(0, 3))  # sometimes spare servers
    platform = random_platform(n_servers, seed=seed + 2, link_density=0.5)
    order = rng.permutation(n_servers)[:n]
    mapping = Mapping(
        {svc: platform.names[order[i]] for i, svc in enumerate(graph.nodes)}
    )
    return graph, platform, mapping


@pytest.mark.parametrize("seed", range(N_GRAPHS))
def test_overlap_schedule_meets_theorem1_bound(seed):
    graph, platform, mapping = _instance(seed)

    # Heterogeneous platform with a random mapping.
    het_costs = CostModel(graph, platform, mapping)
    het_bound = het_costs.period_lower_bound(CommModel.OVERLAP)
    het_plan = schedule_period_overlap(graph, platform=platform, mapping=mapping)
    assert het_plan.period == het_bound
    assert het_plan.is_valid(), het_plan.validate().violations

    # The unit platform must agree with the platform-free evaluation (and
    # with the paper's normalised construction) — checked on half the
    # seeds to keep the sweep fast.
    if seed % 2 == 0:
        hom = Platform.homogeneous(len(graph.nodes))
        hom_bound = overlap_period_bound(graph, hom)
        assert hom_bound == CostModel(graph).period_lower_bound(CommModel.OVERLAP)
        hom_plan = schedule_period_overlap(graph, platform=hom)
        assert hom_plan.period == hom_bound
        assert hom_plan.is_valid(), hom_plan.validate().violations


def test_theorem1_bound_scales_inversely_with_uniform_speedup():
    """Doubling every speed and bandwidth exactly halves the optimal period."""
    for seed in range(10):
        graph, _, _ = _instance(seed)
        slow = Platform.homogeneous(len(graph.nodes))
        fast = Platform.homogeneous(len(graph.nodes), speed=2, bandwidth=2)
        assert overlap_period_bound(graph, fast) * 2 == overlap_period_bound(graph, slow)
