"""Exhaustive search, greedy forests, local search, no-comm baseline."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CommModel, CostModel, ExecutionGraph, make_application
from repro.optimize import (
    Effort,
    exhaustive_minlatency,
    exhaustive_minperiod,
    greedy_minlatency,
    greedy_minperiod,
    iter_dags,
    iter_forests,
    local_search_minperiod,
    nocomm_latency,
    nocomm_optimal_latency_chain,
    nocomm_optimal_period_plan,
    nocomm_period,
    period_objective,
)

F = Fraction


@st.composite
def rand_app(draw, max_n=4):
    n = draw(st.integers(2, max_n))
    return make_application(
        [
            (
                f"C{i}",
                draw(st.integers(0, 8)),
                draw(st.sampled_from([F(1, 2), F(1), F(2)])),
            )
            for i in range(n)
        ]
    )


class TestEnumerations:
    def test_forest_count_n2(self):
        app = make_application([("a", 1, 1), ("b", 1, 1)])
        forests = list(iter_forests(app))
        # parent maps: (None,None), (None,a), (b,None) -> 3 forests
        assert len(forests) == 3

    def test_forest_count_n3(self):
        app = make_application([(f"C{i}", 1, 1) for i in range(3)])
        # Cayley-like count: labelled forests of rooted trees on 3 nodes = 16
        assert len(list(iter_forests(app))) == 16

    def test_all_forests_are_forests(self):
        app = make_application([(f"C{i}", 1, 1) for i in range(4)])
        for g in iter_forests(app):
            assert g.is_forest

    def test_dag_count_n2(self):
        app = make_application([("a", 1, 1), ("b", 1, 1)])
        dags = list(iter_dags(app))
        # {}, {a->b}, {b->a}
        assert len(dags) == 3

    def test_dag_count_n3(self):
        app = make_application([(f"C{i}", 1, 1) for i in range(3)])
        # labelled DAGs on 3 nodes = 25
        assert len(list(iter_dags(app))) == 25

    def test_dag_guard(self):
        app = make_application([(f"C{i}", 1, 1) for i in range(6)])
        with pytest.raises(ValueError):
            list(iter_dags(app))

    def test_forest_rejects_precedence(self):
        app = make_application(
            [("a", 1, 1), ("b", 1, 1)], precedence=[("a", "b")]
        )
        with pytest.raises(ValueError):
            list(iter_forests(app))


class TestProposition4:
    """Some optimal MinPeriod plan is a forest (no precedence constraints)."""

    @settings(max_examples=15, deadline=None)
    @given(rand_app(max_n=4), st.sampled_from(list(CommModel)))
    def test_forest_matches_dag_optimum(self, app, model):
        effort = Effort.BOUND if model is not CommModel.OVERLAP else Effort.EXACT
        forest_val, _ = exhaustive_minperiod(
            app, model, forests_only=True, effort=effort
        )
        dag_val, _ = exhaustive_minperiod(
            app, model, forests_only=False, effort=effort
        )
        assert forest_val == dag_val


class TestHeuristics:
    @settings(max_examples=10, deadline=None)
    @given(rand_app(max_n=4))
    def test_greedy_ge_exhaustive_overlap(self, app):
        exact_val, _ = exhaustive_minperiod(app, CommModel.OVERLAP)
        greedy_val, graph = greedy_minperiod(app, CommModel.OVERLAP)
        assert graph.is_forest
        assert greedy_val >= exact_val

    @settings(max_examples=8, deadline=None)
    @given(rand_app(max_n=4))
    def test_local_search_improves_or_keeps(self, app):
        _, start = nocomm_optimal_period_plan(app)
        start_val = period_objective(start, CommModel.OVERLAP)
        final_val, final = local_search_minperiod(start, CommModel.OVERLAP)
        assert final_val <= start_val
        exact_val, _ = exhaustive_minperiod(app, CommModel.OVERLAP)
        assert final_val >= exact_val

    @settings(max_examples=8, deadline=None)
    @given(rand_app(max_n=4))
    def test_greedy_latency_sane(self, app):
        val, graph = greedy_minlatency(app, CommModel.INORDER)
        assert graph.is_forest
        exact_val, _ = exhaustive_minlatency(app, CommModel.INORDER)
        assert val >= exact_val


class TestNoCommBaseline:
    def test_structure(self):
        app = make_application(
            [("f1", 3, F(1, 2)), ("f2", 1, F(1, 2)), ("e", 5, 2)]
        )
        val, graph = nocomm_optimal_period_plan(app)
        # chain f2 (cost 1) -> f1 (cost 3), leaf e after f1
        assert set(graph.edges) == {("f2", "f1"), ("f1", "e")}
        assert val == max(
            F(1), F(1, 2) * 3, F(1, 4) * 5
        )

    def test_all_expanders_stay_parallel(self):
        app = make_application([("a", 2, 2), ("b", 3, 1)])
        val, graph = nocomm_optimal_period_plan(app)
        assert graph.edges == frozenset()
        assert val == 3

    @settings(max_examples=25, deadline=None)
    @given(rand_app(max_n=5))
    def test_nocomm_period_le_any_forest(self, app):
        """The baseline is optimal when communications are free."""
        base_val, _ = nocomm_optimal_period_plan(app)
        for graph in iter_forests(app):
            assert nocomm_period(graph) >= base_val

    def test_nocomm_latency_chain_rule(self):
        app = make_application(
            [("cheapstrong", 1, F(1, 10)), ("priceyweak", 10, F(9, 10))]
        )
        val, graph = nocomm_optimal_latency_chain(app)
        assert graph.topological_order[0] == "cheapstrong"
        assert val == nocomm_latency(graph)

    def test_b1_counterexample_gap(self):
        """Appendix B.1: the no-comm baseline collapses under OVERLAP."""
        from repro.workloads.paper import b1_application, b1_counterexample

        app = b1_application()
        nocomm_val, nocomm_graph = nocomm_optimal_period_plan(app)
        assert nocomm_val <= 100
        overlap_of_nocomm = CostModel(nocomm_graph).period_lower_bound(
            CommModel.OVERLAP
        )
        assert overlap_of_nocomm > 100  # approx 200
        good = b1_counterexample()
        assert (
            CostModel(good.graph).period_lower_bound(CommModel.OVERLAP) == 100
        )
