"""TTLCache / EvaluationCache bounds: LRU eviction, TTL expiry, counters.

The serve daemon keeps one process-wide cache warm for days; these tests
pin the behaviours that keep it safe to do so — the entry bound can never
be bypassed (inserts *and* merges evict through one counted path), lapsed
entries never get served, counters stay exact under concurrent hammering,
and ``clear_default_cache`` really does reset a "cold" run's statistics.
"""

import threading

import pytest

from repro import CommModel, ExecutionGraph, make_application
from repro.planner import (
    CacheStats,
    EvaluationCache,
    TTLCache,
    clear_default_cache,
    default_cache,
    solve,
)
from repro.planner.cache import DEFAULT_MAX_ENTRIES


class FakeClock:
    """Injectable monotonic time source."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------- LRU bound


def test_put_evicts_least_recently_used():
    cache = TTLCache(max_entries=3)
    for k in "abc":
        cache.put(k, k.upper())
    assert cache.get("a") == "A"  # refresh 'a': now b is coldest
    cache.put("d", "D")
    assert "b" not in cache
    assert cache.get("a") == "A" and cache.get("c") == "C" and cache.get("d") == "D"
    assert cache.evictions == 1


def test_eviction_counter_counts_every_drop():
    cache = TTLCache(max_entries=2)
    for i in range(10):
        cache.put(i, i)
    assert len(cache) == 2
    assert cache.evictions == 8


def test_overwrite_does_not_evict():
    cache = TTLCache(max_entries=2)
    cache.put("a", 1)
    cache.put("a", 2)
    cache.put("b", 3)
    assert len(cache) == 2
    assert cache.evictions == 0
    assert cache.get("a") == 2


def test_unbounded_cache_never_evicts():
    cache = TTLCache(max_entries=None)
    for i in range(1000):
        cache.put(i, i)
    assert len(cache) == 1000
    assert cache.evictions == 0


def test_merge_honours_bound_and_counts_evictions():
    cache = TTLCache(max_entries=4)
    cache.put("keep", 0)
    assert cache.get("keep") == 0  # most recently used
    added = cache.merge({f"m{i}": i for i in range(6)})
    assert added == 6
    assert len(cache) == 4
    assert cache.evictions == 3  # 7 present - 4 bound
    # merged entries are newer than 'keep' in insertion order, so the
    # oldest merges go first only after 'keep'... the bound itself is the
    # invariant (regression: merge used to bypass eviction entirely).
    stats = cache.stats()
    assert stats.entries == 4 and stats.evictions == 3


def test_merge_existing_keys_win_and_do_not_count_as_added():
    cache = TTLCache(max_entries=10)
    cache.put("a", "local")
    added = cache.merge({"a": "remote", "b": "new"})
    assert added == 1
    assert cache.get("a") == "local"
    assert cache.get("b") == "new"


# ---------------------------------------------------------------- TTL expiry


def test_ttl_expiry_is_a_miss_and_counted():
    clock = FakeClock()
    cache = TTLCache(max_entries=None, ttl=10.0, clock=clock)
    cache.put("a", 1)
    assert cache.get("a") == 1
    clock.advance(10.5)
    assert cache.get("a") is None
    assert "a" not in cache
    stats = cache.stats()
    assert stats.expirations == 1
    assert stats.hits == 1 and stats.misses == 1


def test_put_refreshes_ttl_stamp():
    clock = FakeClock()
    cache = TTLCache(ttl=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(8.0)
    cache.put("a", 2)  # re-stamped now
    clock.advance(8.0)
    assert cache.get("a") == 2


def test_purge_expired_sweeps_en_masse():
    clock = FakeClock()
    cache = TTLCache(ttl=5.0, clock=clock)
    for i in range(4):
        cache.put(i, i)
    clock.advance(6.0)
    cache.put("fresh", 1)
    assert cache.purge_expired() == 4
    assert len(cache) == 1
    assert cache.stats().expirations == 4


def test_snapshot_and_merge_skip_expired_entries():
    clock = FakeClock()
    cache = TTLCache(ttl=5.0, clock=clock)
    cache.put("old", 1)
    clock.advance(6.0)
    cache.put("new", 2)
    snap = cache.snapshot()
    assert snap == {"new": 2}
    # adopted entries are stamped at merge time, so they start fresh
    other = TTLCache(ttl=5.0, clock=clock)
    assert other.merge(snap) == 1
    assert other.get("new") == 2


def test_no_ttl_entries_never_expire():
    clock = FakeClock()
    cache = TTLCache(ttl=None, clock=clock)
    cache.put("a", 1)
    clock.advance(1e9)
    assert cache.get("a") == 1
    assert cache.purge_expired() == 0


# ---------------------------------------------------------------- persistence


def test_save_load_round_trip(tmp_path):
    path = tmp_path / "cache.pkl"
    cache = TTLCache()
    cache.put(("k", 1), "v1")
    cache.put(("k", 2), "v2")
    assert cache.save(path) == 2
    fresh = TTLCache()
    assert fresh.load(path) == 2
    assert fresh.get(("k", 1)) == "v1"


def test_load_rejects_non_dict_payload(tmp_path):
    import pickle

    path = tmp_path / "bad.pkl"
    path.write_bytes(pickle.dumps([1, 2, 3]))
    with pytest.raises(ValueError, match="does not contain a dict"):
        TTLCache().load(path)


# ------------------------------------------------------------ stats plumbing


def test_stats_snapshot_fields():
    cache = TTLCache(max_entries=100, ttl=60.0)
    cache.put("a", 1)
    cache.get("a")
    cache.get("missing")
    stats = cache.stats()
    assert isinstance(stats, CacheStats)
    assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
    assert stats.lookups == 2
    assert stats.hit_rate == pytest.approx(0.5)
    payload = stats.as_dict()
    assert payload["hit_rate"] == pytest.approx(0.5)
    assert payload["max_entries"] == 100 and payload["ttl"] == 60.0


def test_hit_rate_zero_when_idle():
    assert TTLCache().stats().hit_rate == 0.0


def test_clear_resets_counters_and_entries():
    cache = TTLCache(max_entries=1)
    cache.put("a", 1)
    cache.put("b", 2)  # evicts a
    cache.get("b")
    cache.get("zzz")
    cache.clear()
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.evictions, stats.entries) == (0, 0, 0, 0)


def test_clear_default_cache_resets_hit_miss_counters():
    app = make_application([("A", 3, "1/2"), ("B", 5, 1)])
    solve(app, objective="period", model="overlap")
    cache = default_cache()
    assert cache.misses > 0
    clear_default_cache()
    assert (cache.hits, cache.misses, cache.evictions) == (0, 0, 0)
    assert len(cache) == 0


def test_default_cache_has_default_bound():
    assert default_cache().max_entries == DEFAULT_MAX_ENTRIES


# --------------------------------------------------- evaluation-cache behaviour


def _graph():
    app = make_application([("A", 4, 1), ("B", 4, 1)])
    return ExecutionGraph.chain(app, ["A", "B"])


def test_evaluation_cache_bound_applies_to_get_or_compute():
    cache = EvaluationCache(max_entries=1)
    obj_p = cache.objective("period", CommModel.OVERLAP)
    obj_l = cache.objective("latency", CommModel.OVERLAP)
    graph = _graph()
    obj_p(graph)
    obj_l(graph)  # different kind -> different key -> evicts the period slot
    assert len(cache) == 1
    assert cache.evictions == 1
    obj_p(graph)  # recompute after eviction: a miss, not a hit
    assert cache.misses == 3 and cache.hits == 0


def test_evaluation_cache_ttl_recomputes_after_expiry():
    clock = FakeClock()
    cache = EvaluationCache(ttl=30.0, clock=clock)
    obj = cache.objective("period", CommModel.OVERLAP)
    graph = _graph()
    assert obj(graph) == obj(graph)
    assert (cache.hits, cache.misses) == (1, 1)
    clock.advance(31.0)
    obj(graph)
    assert cache.misses == 2
    assert cache.expirations == 1


# ------------------------------------------------------------- thread safety


def test_concurrent_hammering_keeps_counters_exact():
    """8 threads × 200 mixed get/put over a small keyspace: counters must
    add up exactly and the LRU bound must hold throughout."""
    cache = TTLCache(max_entries=16)
    threads, per_thread, keyspace = 8, 200, 48
    barrier = threading.Barrier(threads)
    errors = []

    def hammer(seed: int) -> None:
        try:
            barrier.wait()
            for i in range(per_thread):
                key = (seed * 31 + i * 7) % keyspace
                value = cache.get(key)
                if value is None:
                    cache.put(key, key * 2)
                else:
                    assert value == key * 2
                assert len(cache) <= 16
        except Exception as exc:  # surfaced below; threads swallow otherwise
            errors.append(exc)

    workers = [
        threading.Thread(target=hammer, args=(seed,)) for seed in range(threads)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    assert not errors
    stats = cache.stats()
    assert stats.lookups == threads * per_thread
    assert stats.entries <= 16


def test_concurrent_get_or_compute_never_duplicates_work():
    """Concurrent identical evaluations: every thread sees the same value
    and the compute runs exactly once (the lock spans the compute)."""
    cache = EvaluationCache()
    graph = _graph()
    computed = []
    barrier = threading.Barrier(8)
    values = []

    from repro.optimize.evaluation import Effort

    def query() -> None:
        barrier.wait()
        value = cache.get_or_compute(
            "period",
            graph,
            CommModel.OVERLAP,
            Effort.EXACT,
            lambda: computed.append(1) or 42,
        )
        values.append(value)

    workers = [threading.Thread(target=query) for _ in range(8)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    assert len(computed) == 1
    assert values == [42] * 8
    assert cache.hits == 7 and cache.misses == 1
