"""Robust vs nominal planning under sampled parameter perturbations.

A seeded sweep over fragile catalog instances (``noisy:n=6`` — costs
spread over an order of magnitude, selectivities clustered around 1, so
the optimal tree hinges on small parameter differences).  Each instance
is solved three ways — nominal, ``worst_case`` robust and
``quantile(9/10)`` robust over the same seeded ±15% scenario set — and
every plan is exact-scored on every scenario.

Asserted shape — the PR's acceptance criteria, machine-independent:

* **soundness**: on every instance, each robust plan's robust score is
  <= the nominal-optimal plan's score under the same mode (guaranteed by
  construction: the nominal candidate is always certified);
* **separation**: on at least a third of the instances the worst-case
  robust plan differs from the nominal optimum AND is strictly better
  under perturbation — robust planning has something to win here, it is
  not a no-op.

Records ``benchmarks/results/BENCH_robust.json`` (uploaded as a CI
artifact; deliberately *not* in ``compare_bench.BENCH_FILES`` — wall
times move with runner hardware, and the degradation shape is asserted
right here) and the human table to ``robust_degradation.txt``.
"""

import json
from fractions import Fraction

from repro.planner import load_workload, solve
from repro.robust import RobustSpec, degradation_report

from bench_helpers import RESULTS_DIR, record

N = 6
SEEDS = range(10)
SCENARIOS = 10
EPS = Fraction(15, 100)

#: At least this fraction of instances must show a strict robust win.
MIN_SEPARATION = 1 / 3


def _spec(mode, seed, q=None):
    return RobustSpec(
        mode=mode, q=q, scenarios=SCENARIOS, seed=seed,
        cost_rel=EPS, selectivity_rel=EPS,
    )


def test_robust_plans_never_degrade_more_than_nominal():
    rows = []
    strict_wins = 0
    for seed in SEEDS:
        app = load_workload(f"noisy:n={N},seed={seed}").application
        worst = _spec("worst_case", seed)
        quant = _spec("quantile", seed, q=Fraction(9, 10))

        report_w = degradation_report(app, worst)
        report_q = degradation_report(app, quant)

        # soundness: robust never scores worse than nominal, either mode
        assert report_w.robust_score <= report_w.nominal_score, seed
        assert report_q.robust_score <= report_q.nominal_score, seed
        if report_w.plans_differ and report_w.improvement > 0:
            strict_wins += 1

        nominal = solve(app, schedule=False)
        robust_w = solve(app, robust=worst, schedule=False)
        # the solver's certified value equals the report's robust score
        assert robust_w.value == report_w.robust_score, seed

        rows.append({
            "workload": f"noisy:n={N},seed={seed}",
            "nominal_value": str(nominal.value),
            "worst_case": {
                "spec": worst.label(),
                "plans_differ": report_w.plans_differ,
                "nominal_score": str(report_w.nominal_score),
                "robust_score": str(report_w.robust_score),
                "improvement": float(report_w.improvement),
                "nominal_worst_ratio": float(report_w.nominal_worst_ratio),
                "robust_worst_ratio": float(report_w.robust_worst_ratio),
            },
            "quantile_90": {
                "spec": quant.label(),
                "plans_differ": report_q.plans_differ,
                "nominal_score": str(report_q.nominal_score),
                "robust_score": str(report_q.robust_score),
                "improvement": float(report_q.improvement),
            },
        })

    # separation: the sweep must contain real robust wins, not ties only
    assert strict_wins >= len(list(SEEDS)) * MIN_SEPARATION, strict_wins

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_robust.json").write_text(
        json.dumps(
            {
                "sweep": {
                    "family": f"noisy:n={N}",
                    "seeds": len(list(SEEDS)),
                    "scenarios": SCENARIOS,
                    "eps": str(EPS),
                },
                "strict_wins": strict_wins,
                "instances": rows,
            },
            indent=2,
        )
        + "\n"
    )

    lines = [
        "robust vs nominal degradation (noisy:n=6 sweep, ±15%, "
        f"{SCENARIOS} scenarios/instance)",
        "",
        f"{'seed':>4} {'nominal':>10} {'wc nominal':>11} {'wc robust':>11} "
        f"{'win':>7} {'q90 win':>8} {'differs':>7}",
    ]
    for seed, row in zip(SEEDS, rows):
        wc = row["worst_case"]
        lines.append(
            f"{seed:>4} {float(Fraction(row['nominal_value'])):>10.4g} "
            f"{float(Fraction(wc['nominal_score'])):>11.4g} "
            f"{float(Fraction(wc['robust_score'])):>11.4g} "
            f"{wc['improvement']:>7.2%} "
            f"{row['quantile_90']['improvement']:>8.2%} "
            f"{'yes' if wc['plans_differ'] else 'no':>7}"
        )
    lines.append("")
    lines.append(
        f"strict worst-case wins: {strict_wins}/{len(list(SEEDS))} instances"
    )
    record("robust_degradation", "\n".join(lines))
