"""Experiment Fig 1 / Section 2.3: the paper's worked example.

Regenerates every number the paper derives by hand: latency 21 (all
models), OVERLAP period 4, OUTORDER period 7, INORDER period 23/3.
"""

from fractions import Fraction

from repro.analysis import text_table
from repro.scheduling import (
    exact_inorder_period,
    oneport_latency_schedule,
    outorder_schedule,
    schedule_period_overlap,
)
from repro.workloads.paper import fig1_example

from bench_helpers import record

F = Fraction


def compute_fig1_row():
    inst = fig1_example()
    graph = inst.graph
    overlap = schedule_period_overlap(graph)
    inorder_lam, inorder_plan = exact_inorder_period(graph)
    outorder = outorder_schedule(graph)
    latency = oneport_latency_schedule(graph)
    return {
        "latency": latency.latency,
        "period_overlap": overlap.period,
        "period_outorder": outorder.period,
        "period_inorder": inorder_lam,
        "plans": (overlap, inorder_plan, outorder, latency),
    }


def test_fig1_example(benchmark):
    result = benchmark(compute_fig1_row)
    inst = fig1_example()
    rows = []
    for key in ("latency", "period_overlap", "period_outorder", "period_inorder"):
        rows.append((key, inst.expected[key], result[key],
                     "ok" if inst.expected[key] == result[key] else "MISMATCH"))
    record(
        "fig1_example",
        text_table(["quantity", "paper", "measured", "status"], rows),
    )
    assert result["latency"] == 21
    assert result["period_overlap"] == 4
    assert result["period_outorder"] == 7
    assert result["period_inorder"] == F(23, 3)
    for plan in result["plans"]:
        assert plan.validate().ok
