"""Batched-kernel throughput and the anytime quality-vs-deadline curve.

Records machine-readable numbers to ``benchmarks/results/BENCH_batched.json``
(and a human table to ``batched_throughput.txt``):

* **candidates/sec** for MinPeriod scoring of forest candidates: the
  scalar path (decode each parent vector, build :class:`FloatCosts`,
  query ``period_lower_bound``) versus the batched
  :class:`~repro.core.batched.ForestBatch` kernel at chunk sizes 64,
  512 and 4096.  The batched kernel must deliver **at least 10x** the
  scalar throughput at chunk >= 512 (typically far more); a bit-for-bit
  spot check on the first chunk keeps the comparison honest — the two
  paths score candidates to the *same doubles*, so the speedup buys no
  accuracy loss.
* the **anytime quality-vs-deadline curve** at ``n = 12`` (the local
  search benchmark size, far beyond exhaustive reach): the portfolio's
  value as the ``solve(deadline=...)`` budget grows from an
  already-expired deadline to one generous enough for every racer.
  Quality must be monotone — more budget never returns a worse plan —
  and the generous budget must reproduce the unbudgeted portfolio
  result exactly.

``BENCH_batched.json`` is uploaded as a CI artifact but deliberately
*not* added to ``compare_bench.BENCH_FILES``: raw candidates/sec moves
with runner hardware far more than the guarded count-type metrics, so
it would make the perf guard flaky.  The >= 10x floor asserted here is
the stable, machine-independent claim.
"""

import json
import time

from repro.analysis import text_table
from repro.core import CommModel, CycleError
from repro.core.batched import ForestBatch, iter_forest_rows
from repro.core.numeric import FloatCosts
from repro.planner import EvaluationCache, solve
from repro.workloads.generators import random_application

from bench_helpers import RESULTS_DIR, record

#: Candidate-scoring instance: n=8 keeps the scalar baseline sample
#: cheap while the batched kernel sweeps a meaningful slice of the
#: 8^8 ~ 16.7M-row candidate space.
THROUGHPUT_N = 8

#: Scalar candidates timed (full decode + FloatCosts per row).
SCALAR_SAMPLE = 1_500

#: Batched rows timed per chunk size.
BATCHED_SAMPLE = 200_000

CHUNKS = (64, 512, 4096)

#: The ISSUE's floor: batched must beat scalar by 10x from chunk 512 up.
MIN_SPEEDUP_AT_512 = 10.0

#: Anytime curve instance size and deadlines (seconds).
ANYTIME_N = 12
DEADLINES = (0.0, 0.25, 2.0, 30.0)

#: Bound the B&B racer to the portfolio's unbudgeted default so the
#: budgeted and unbudgeted rosters do identical work (and the generous
#: deadline stays cheap in CI — an unbounded B&B proof at n=12 takes
#: ~50 s without changing the optimum it returns).
ANYTIME_NODE_LIMIT = 20_000


def _scalar_candidates_per_sec(app, fb, model):
    """Score ``SCALAR_SAMPLE`` rows the pre-batch way, one at a time."""
    rows = []
    for chunk_rows, _base in iter_forest_rows(len(app), chunk=256):
        rows.extend(chunk_rows.tolist())
        if len(rows) >= SCALAR_SAMPLE:
            break
    rows = rows[:SCALAR_SAMPLE]
    started = time.perf_counter()
    best = float("inf")
    for row in rows:
        try:
            graph = fb.decode(row)
            value = FloatCosts(graph).period_lower_bound(model)
        except CycleError:
            continue  # a scalar scan must detect cyclic rows too
        best = min(best, value)
    wall = time.perf_counter() - started
    return len(rows) / wall, wall, best


def _batched_candidates_per_sec(fb, n, chunk):
    """Score ``BATCHED_SAMPLE`` rows through the vectorised kernel."""
    scored = 0
    best = float("inf")
    started = time.perf_counter()
    for rows, _base in iter_forest_rows(n, chunk=chunk):
        valid, periods = fb.periods(rows)
        if valid.any():
            best = min(best, float(periods[valid].min()))
        scored += len(rows)
        if scored >= BATCHED_SAMPLE:
            break
    wall = time.perf_counter() - started
    return scored / wall, wall, scored, best


def _throughput_rows():
    app = random_application(THROUGHPUT_N, seed=3, filter_fraction=0.6)
    model = CommModel.OVERLAP
    fb = ForestBatch(app, model)

    # Bit-for-bit spot check before timing: the batched kernel and the
    # scalar FloatCosts path must produce the *same doubles* per row.
    for rows, _base in iter_forest_rows(len(app), chunk=64):
        valid, periods = fb.periods(rows)
        for k, row in enumerate(rows):
            try:
                graph = fb.decode(row)
            except CycleError:
                graph = None
            assert valid[k] == (graph is not None)
            if graph is not None:
                assert periods[k] == FloatCosts(graph).period_lower_bound(model)
        break

    scalar_cps, scalar_wall, _ = _scalar_candidates_per_sec(app, fb, model)
    rows_out = [{
        "mode": "scalar",
        "chunk": None,
        "candidates": SCALAR_SAMPLE,
        "wall_s": round(scalar_wall, 4),
        "candidates_per_sec": round(scalar_cps),
        "speedup": 1.0,
    }]
    for chunk in CHUNKS:
        cps, wall, scored, _ = _batched_candidates_per_sec(
            fb, len(app), chunk)
        rows_out.append({
            "mode": "batched",
            "chunk": chunk,
            "candidates": scored,
            "wall_s": round(wall, 4),
            "candidates_per_sec": round(cps),
            "speedup": round(cps / scalar_cps, 1),
        })
    return rows_out


def _anytime_rows():
    # Seed chosen so the curve is *not* flat: greedy lands well above the
    # optimum and the budget decides how far the racers close the gap.
    app = random_application(ANYTIME_N, seed=10, filter_fraction=0.7)
    unbudgeted = solve(app, method="portfolio", schedule=False,
                       cache=EvaluationCache(),
                       node_limit=ANYTIME_NODE_LIMIT)
    rows = []
    for deadline in DEADLINES:
        started = time.perf_counter()
        result = solve(app, deadline=deadline, schedule=False,
                       cache=EvaluationCache(),
                       node_limit=ANYTIME_NODE_LIMIT)
        wall = time.perf_counter() - started
        assert result.method == "portfolio"
        assert result.graph.is_forest  # a valid plan at *every* budget
        rows.append({
            "n": ANYTIME_N,
            "deadline_s": deadline,
            "value": str(result.value),
            "value_float": float(result.value),
            "wall_s": round(wall, 4),
            "budget_exhausted": result.budget_exhausted,
            "racers_run": len(result.stats.extras["racers"]),
            "winner": (result.trajectory or [(None, None, "greedy")])[-1][2],
        })
    rows.append({
        "n": ANYTIME_N,
        "deadline_s": None,  # unbudgeted portfolio reference
        "value": str(unbudgeted.value),
        "value_float": float(unbudgeted.value),
        "wall_s": None,
        "budget_exhausted": unbudgeted.budget_exhausted,
        "racers_run": len(unbudgeted.stats.extras["racers"]),
        "winner": (unbudgeted.trajectory or [(None, None, "greedy")])[-1][2],
    })
    return rows


def test_batched_throughput(benchmark):
    throughput, anytime = benchmark.pedantic(
        lambda: (_throughput_rows(), _anytime_rows()), rounds=1, iterations=1)

    # --- assertions: the shape the ISSUE promises -----------------------
    for row in throughput:
        if row["mode"] == "batched" and row["chunk"] >= 512:
            assert row["speedup"] >= MIN_SPEEDUP_AT_512, row
    # Quality is monotone in the budget, and a generous budget matches
    # the unbudgeted portfolio bit-for-bit (same racers all complete).
    timed = [r for r in anytime if r["deadline_s"] is not None]
    for earlier, later in zip(timed, timed[1:]):
        assert later["value_float"] <= earlier["value_float"], (earlier, later)
    # The curve is a curve: on this instance the generous budget strictly
    # beats the expired one (greedy alone is ~1.5x off the optimum).
    assert timed[-1]["value_float"] < timed[0]["value_float"]
    reference = anytime[-1]
    assert timed[-1]["value"] == reference["value"]

    payload = {"throughput": throughput, "anytime": anytime}
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_batched.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    table = text_table(
        ["mode", "chunk", "candidates", "wall s", "cand/s", "speedup"],
        [
            [r["mode"], r["chunk"] if r["chunk"] else "-", r["candidates"],
             r["wall_s"], r["candidates_per_sec"], f'{r["speedup"]}x']
            for r in throughput
        ],
    )
    anytime_table = text_table(
        ["deadline s", "value", "wall s", "exhausted", "racers", "winner"],
        [
            [r["deadline_s"] if r["deadline_s"] is not None else "unbudgeted",
             r["value"],
             r["wall_s"] if r["wall_s"] is not None else "-",
             r["budget_exhausted"], r["racers_run"], r["winner"]]
            for r in anytime
        ],
    )
    record(
        "batched_throughput",
        f"MinPeriod candidate scoring at n={THROUGHPUT_N}: scalar "
        "FloatCosts loop vs the batched ForestBatch kernel\n"
        + table
        + f"\n\nanytime portfolio at n={ANYTIME_N}: solution quality vs "
        "deadline budget\n"
        + anytime_table,
    )
