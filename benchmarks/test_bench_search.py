"""Search-performance benchmark: branch and bound + incremental deltas.

Records machine-readable numbers to ``benchmarks/results/BENCH_search.json``
(and a human table to ``search_performance.txt``) so the perf trajectory
is tracked across PRs:

* exact MinPeriod(OVERLAP): objective evaluations and wall time of branch
  and bound versus the forest-enumeration baseline, per instance size —
  including ``n = 9``, where enumeration (``10^8`` forests) is infeasible
  and only branch and bound certifies the optimum;
* the local-search hot path at ``n = 12``: objective evaluations with and
  without incremental delta scoring (the delta path must save at least
  3x).
"""

import json
import time
from fractions import Fraction

from repro.analysis import text_table
from repro.core import CommModel, ExecutionGraph
from repro.optimize import (
    IncrementalForestPeriod,
    bb_minperiod,
    greedy_forest,
    iter_forests,
    local_search_forest,
    make_period_objective,
)
from repro.planner import EvaluationCache, solve
from repro.workloads.generators import random_application

from bench_helpers import RESULTS_DIR, record

F = Fraction

#: Enumerate the baseline only while it stays tractable in CI.
ENUMERATION_MAX = 6


def _forest_count(n):
    """Labelled rooted forests on *n* nodes: ``(n+1)^(n-1)``."""
    return (n + 1) ** (n - 1)


def _bb_row(n, seed, filter_fraction=0.6):
    app = random_application(n, seed=seed, filter_fraction=filter_fraction)
    started = time.perf_counter()
    result = solve(app, method="branch-and-bound", schedule=False,
                   cache=EvaluationCache())
    bb_wall = time.perf_counter() - started
    row = {
        "n": n,
        "value": str(result.value),
        "bb_wall_s": round(bb_wall, 4),
        "bb_evaluations": result.stats.extras["evaluated"],
        "bb_expanded": result.stats.extras["expanded"],
        "bb_pruned": result.stats.extras["pruned"],
        "certified": result.stats.extras["certified"],
        "enumeration_size": _forest_count(n),
    }
    if n <= ENUMERATION_MAX:
        objective = make_period_objective(CommModel.OVERLAP)
        started = time.perf_counter()
        enum_value = min(objective(g) for g in iter_forests(app))
        row["enumeration_wall_s"] = round(time.perf_counter() - started, 4)
        row["enumeration_value"] = str(enum_value)
        assert enum_value == result.value
    else:
        row["enumeration_wall_s"] = None  # infeasible in CI
    return row


def _count_calls(objective):
    calls = {"n": 0}

    def wrapped(graph):
        calls["n"] += 1
        return objective(graph)

    return wrapped, calls


def _local_search_rows(n=12, seeds=(1, 2, 3)):
    rows = []
    for seed in seeds:
        app = random_application(n, seed=seed, filter_fraction=0.7)
        objective = make_period_objective(CommModel.OVERLAP)
        _, seed_graph = greedy_forest(app, objective)

        baseline_obj, baseline_calls = _count_calls(objective)
        started = time.perf_counter()
        base_val, _ = local_search_forest(seed_graph, baseline_obj)
        baseline_wall = time.perf_counter() - started

        delta = IncrementalForestPeriod(seed_graph, model=CommModel.OVERLAP)
        delta_obj, delta_calls = _count_calls(objective)
        started = time.perf_counter()
        fast_val, _ = local_search_forest(seed_graph, delta_obj, delta=delta)
        delta_wall = time.perf_counter() - started

        assert fast_val == base_val
        rows.append({
            "n": n,
            "seed": seed,
            "value": str(base_val),
            "evaluations_full": baseline_calls["n"],
            "evaluations_delta": delta_calls["n"],
            "wall_full_s": round(baseline_wall, 4),
            "wall_delta_s": round(delta_wall, 4),
        })
    return rows


def test_search_performance(benchmark):
    def run():
        # Seeds chosen so the bound does real work (the incumbent is not
        # simply certified at the root by the static floors).
        bb_rows = [
            _bb_row(n, seed)
            for n, seed in [(5, 0), (6, 2), (7, 6), (8, 2), (9, 4)]
        ]
        ls_rows = _local_search_rows()
        return bb_rows, ls_rows

    bb_rows, ls_rows = benchmark.pedantic(run, rounds=1, iterations=1)

    # --- assertions: the shape the ISSUE promises -----------------------
    for row in bb_rows:
        assert row["certified"], row
        # Pruned exact search pays far fewer evaluations than enumeration.
        assert row["bb_evaluations"] * 10 < row["enumeration_size"], row
    n9 = next(r for r in bb_rows if r["n"] == 9)
    assert n9["bb_wall_s"] < 60.0  # enumeration: ~1e8 forests, infeasible
    for row in ls_rows:
        # Incremental deltas: >= 3x fewer objective evaluations.  The
        # delta path only re-scores through the objective zero times here,
        # so guard the denominator.
        assert row["evaluations_full"] >= 3 * max(row["evaluations_delta"], 1)

    payload = {
        "branch_and_bound": bb_rows,
        "local_search_incremental": ls_rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_search.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    table = text_table(
        ["n", "bb value", "bb evals", "expanded", "pruned", "bb s",
         "enum size", "enum s"],
        [
            [r["n"], r["value"], r["bb_evaluations"], r["bb_expanded"],
             r["bb_pruned"], r["bb_wall_s"], r["enumeration_size"],
             r["enumeration_wall_s"] if r["enumeration_wall_s"] is not None
             else "infeasible"]
            for r in bb_rows
        ],
    )
    ls_table = text_table(
        ["n", "seed", "value", "evals (full)", "evals (delta)",
         "full s", "delta s"],
        [
            [r["n"], r["seed"], r["value"], r["evaluations_full"],
             r["evaluations_delta"], r["wall_full_s"], r["wall_delta_s"]]
            for r in ls_rows
        ],
    )
    record(
        "search_performance",
        "exact MinPeriod(OVERLAP): branch and bound vs forest enumeration\n"
        + table
        + "\n\nlocal search at n=12: full evaluation vs incremental deltas\n"
        + ls_table,
    )
