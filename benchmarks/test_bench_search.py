"""Search-performance benchmark: branch and bound + incremental deltas.

Records machine-readable numbers to ``benchmarks/results/BENCH_search.json``
(and a human table to ``search_performance.txt``) so the perf trajectory
is tracked across PRs:

* exact MinPeriod(OVERLAP): objective evaluations and wall time of branch
  and bound versus the forest-enumeration baseline, per instance size —
  with **certified-vs-exact tier comparison rows**: the certified float
  fast path must return bit-for-bit the exact tier's optimum while
  cutting the wall time (n=9 at least 3x here; ~8x measured), and it
  pushes the frontier to n=10/11, where the exact tier is no longer
  timed (n=11 must certify in under 10 s);
* the local-search hot path at ``n = 12``: objective evaluations with and
  without incremental delta scoring (the delta path must save at least
  3x), plus the certified two-tier delta against the exact-Fraction one.
"""

import json
import time
from fractions import Fraction

from repro.analysis import text_table
from repro.core import CommModel, Exactness
from repro.optimize import (
    IncrementalForestPeriod,
    greedy_forest,
    iter_forests,
    local_search_forest,
    make_period_objective,
    period_delta,
)
from repro.optimize.evaluation import Effort
from repro.planner import EvaluationCache, solve
from repro.workloads.generators import random_application

from bench_helpers import RESULTS_DIR, record

F = Fraction

#: Enumerate the baseline only while it stays tractable in CI.
ENUMERATION_MAX = 6

#: Run the exact (all-Fraction) tier alongside the certified one up to
#: this size; beyond it only the certified fast path is timed.
EXACT_COMPARE_MAX = 9


def _forest_count(n):
    """Labelled rooted forests on *n* nodes: ``(n+1)^(n-1)``."""
    return (n + 1) ** (n - 1)


def _bb_solve(app, exactness):
    started = time.perf_counter()
    result = solve(app, method="branch-and-bound", schedule=False,
                   cache=EvaluationCache(), exactness=exactness)
    return time.perf_counter() - started, result


def _bb_row(n, seed, filter_fraction=0.6):
    app = random_application(n, seed=seed, filter_fraction=filter_fraction)
    cert_wall, result = _bb_solve(app, "certified")
    row = {
        "n": n,
        "value": str(result.value),
        "bb_wall_s": round(cert_wall, 4),
        "bb_evaluations": result.stats.extras["evaluated"],
        "bb_expanded": result.stats.extras["expanded"],
        "bb_pruned": result.stats.extras["pruned"],
        "certified": result.stats.extras["certified"],
        "enumeration_size": _forest_count(n),
    }
    if n <= EXACT_COMPARE_MAX:
        exact_wall, exact_result = _bb_solve(app, "exact")
        assert exact_result.value == result.value  # bit-for-bit certification
        row["exact_wall_s"] = round(exact_wall, 4)
        row["certified_speedup"] = round(exact_wall / cert_wall, 1)
    else:
        row["exact_wall_s"] = None  # exact tier out of the timed range
        row["certified_speedup"] = None
    if n <= ENUMERATION_MAX:
        objective = make_period_objective(CommModel.OVERLAP)
        started = time.perf_counter()
        enum_value = min(objective(g) for g in iter_forests(app))
        row["enumeration_wall_s"] = round(time.perf_counter() - started, 4)
        row["enumeration_value"] = str(enum_value)
        assert enum_value == result.value
    else:
        row["enumeration_wall_s"] = None  # infeasible in CI
    return row


def _count_calls(objective):
    calls = {"n": 0}

    def wrapped(graph):
        calls["n"] += 1
        return objective(graph)

    return wrapped, calls


def _local_search_rows(n=12, seeds=(1, 2, 3)):
    rows = []
    for seed in seeds:
        app = random_application(n, seed=seed, filter_fraction=0.7)
        objective = make_period_objective(CommModel.OVERLAP)
        _, seed_graph = greedy_forest(app, objective)

        baseline_obj, baseline_calls = _count_calls(objective)
        started = time.perf_counter()
        base_val, _ = local_search_forest(seed_graph, baseline_obj)
        baseline_wall = time.perf_counter() - started

        delta = IncrementalForestPeriod(seed_graph, model=CommModel.OVERLAP)
        delta_obj, delta_calls = _count_calls(objective)
        started = time.perf_counter()
        fast_val, _ = local_search_forest(seed_graph, delta_obj, delta=delta)
        delta_wall = time.perf_counter() - started

        certified = period_delta(
            seed_graph, CommModel.OVERLAP, Effort.HEURISTIC, None, None,
            exactness=Exactness.CERTIFIED,
        )
        started = time.perf_counter()
        cert_val, _ = local_search_forest(seed_graph, objective, delta=certified)
        certified_wall = time.perf_counter() - started

        assert fast_val == base_val
        assert cert_val == base_val  # certified tier: bit-for-bit trajectory
        rows.append({
            "n": n,
            "seed": seed,
            "value": str(base_val),
            "evaluations_full": baseline_calls["n"],
            "evaluations_delta": delta_calls["n"],
            "wall_full_s": round(baseline_wall, 4),
            "wall_delta_s": round(delta_wall, 4),
            "wall_certified_s": round(certified_wall, 4),
        })
    return rows


def test_search_performance(benchmark):
    def run():
        # Seeds chosen so the bound does real work (the incumbent is not
        # simply certified at the root by the static floors).  n=10 and 11
        # are certified-tier only — the frontier the float fast path opened.
        bb_rows = [
            _bb_row(n, seed)
            for n, seed in [(5, 0), (6, 2), (7, 6), (8, 2), (9, 4),
                            (10, 4), (11, 4)]
        ]
        ls_rows = _local_search_rows()
        return bb_rows, ls_rows

    bb_rows, ls_rows = benchmark.pedantic(run, rounds=1, iterations=1)

    # --- assertions: the shape the ISSUE promises -----------------------
    for row in bb_rows:
        assert row["certified"], row
        # Pruned exact search pays far fewer evaluations than enumeration.
        assert row["bb_evaluations"] * 10 < row["enumeration_size"], row
    n9 = next(r for r in bb_rows if r["n"] == 9)
    # The certified float tier must beat the exact tier by a wide margin
    # (>= 3x asserted to stay unflaky in CI; ~8x measured) ...
    assert n9["certified_speedup"] >= 3.0, n9
    # ... and push the frontier: n=11 certifies the optimum in under 10 s
    # where the exact tier took minutes and enumeration ~ 3e10 forests.
    n11 = next(r for r in bb_rows if r["n"] == 11)
    assert n11["bb_wall_s"] < 10.0, n11
    for row in ls_rows:
        # Incremental deltas: >= 3x fewer objective evaluations.  The
        # delta path only re-scores through the objective zero times here,
        # so guard the denominator.
        assert row["evaluations_full"] >= 3 * max(row["evaluations_delta"], 1)

    payload = {
        "branch_and_bound": bb_rows,
        "local_search_incremental": ls_rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_search.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    table = text_table(
        ["n", "bb value", "bb evals", "expanded", "pruned",
         "certified s", "exact s", "speedup", "enum size", "enum s"],
        [
            [r["n"], r["value"], r["bb_evaluations"], r["bb_expanded"],
             r["bb_pruned"], r["bb_wall_s"],
             r["exact_wall_s"] if r["exact_wall_s"] is not None else "-",
             r["certified_speedup"] if r["certified_speedup"] is not None
             else "-",
             r["enumeration_size"],
             r["enumeration_wall_s"] if r["enumeration_wall_s"] is not None
             else "infeasible"]
            for r in bb_rows
        ],
    )
    ls_table = text_table(
        ["n", "seed", "value", "evals (full)", "evals (delta)",
         "full s", "delta s", "certified s"],
        [
            [r["n"], r["seed"], r["value"], r["evaluations_full"],
             r["evaluations_delta"], r["wall_full_s"], r["wall_delta_s"],
             r["wall_certified_s"]]
            for r in ls_rows
        ],
    )
    record(
        "search_performance",
        "exact MinPeriod(OVERLAP): certified branch and bound vs the exact "
        "tier vs forest enumeration\n"
        + table
        + "\n\nlocal search at n=12: full evaluation vs incremental deltas "
        "(exact and certified tiers)\n"
        + ls_table,
    )
