"""Experiment Prop 4: some optimal MinPeriod plan is a forest.

Exhaustive comparison of forest-restricted and full-DAG optima on random
instances, plus the scaling of the exact searches (the NP-hard wall).
"""

import time

from repro.analysis import text_table
from repro.core import CommModel
from repro.optimize import Effort, exhaustive_minperiod
from repro.workloads.generators import random_application

from bench_helpers import record


def test_prop4_forest_suffices(benchmark):
    apps = [random_application(4, seed=s) for s in range(6)]

    def run():
        out = []
        for app in apps:
            fv, _ = exhaustive_minperiod(app, CommModel.OVERLAP, forests_only=True)
            dv, _ = exhaustive_minperiod(app, CommModel.OVERLAP, forests_only=False)
            out.append((fv, dv))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (f"instance {i}: forest opt == DAG opt", "True", str(fv == dv))
        for i, (fv, dv) in enumerate(results)
    ]
    record("prop4_forest", text_table(["check", "expected", "measured"], rows))
    assert all(fv == dv for fv, dv in results)


def test_exhaustive_scaling_wall(benchmark):
    """The exact search's exponential growth (the practical face of Thm 2)."""
    timings = []
    for n in (3, 4, 5):
        app = random_application(n, seed=n)
        start = time.perf_counter()
        exhaustive_minperiod(app, CommModel.OVERLAP, forests_only=True)
        timings.append((n, time.perf_counter() - start))

    def run():
        app = random_application(4, seed=99)
        return exhaustive_minperiod(app, CommModel.OVERLAP, forests_only=True)

    benchmark(run)
    rows = [(f"n={n} forest search", "(n+1)^n graphs", f"{t * 1e3:.1f} ms") for n, t in timings]
    growth = timings[-1][1] / max(timings[0][1], 1e-9)
    rows.append(("growth n=3 -> n=5", "superpolynomial", f"{growth:.0f}x"))
    record("exhaustive_scaling", text_table(["check", "expected", "measured"], rows))
    assert timings[-1][1] > timings[0][1]
