"""Experiment Fig 6 / B.3: multi-port beats one-port on period.

Multi-port period 12 (corrected instance; see DESIGN.md "Known paper
slips"); a one-port period-12 steady state is exhaustively infeasible.
"""

from repro.analysis import text_table
from repro.core import CommModel, CostModel
from repro.scheduling import (
    b3_oneport_period12_feasible,
    oneport_overlap_period,
    schedule_period_overlap,
)
from repro.workloads.paper import b3_period_ports

from bench_helpers import record


def evaluate_b3():
    inst = b3_period_ports(corrected=True)
    multi = schedule_period_overlap(inst.graph)
    oneport_12 = b3_oneport_period12_feasible(inst.graph)
    oneport_ub = oneport_overlap_period(inst.graph)
    literal = b3_period_ports(corrected=False)
    cm = CostModel(literal.graph)
    return multi, oneport_12, oneport_ub, cm


def test_b3_period_separation(benchmark):
    multi, oneport_12, oneport_ub, literal_cm = benchmark(evaluate_b3)
    rows = [
        ("multi-port period (Theorem 1)", "12", multi.period),
        ("one-port period 12 feasible?", "no", str(oneport_12)),
        ("one-port order-based upper bound", "> 12", oneport_ub),
        ("literal instance cross-comm load", "12", literal_cm.cout("C1")),
        ("literal instance Ccomp(C5) (paper slip)", "12 claimed", literal_cm.ccomp("C5")),
    ]
    record("b3_period_ports", text_table(["quantity", "paper", "measured"], rows))
    assert multi.period == 12
    assert multi.validate().ok
    assert not oneport_12  # the separation: one-port > 12
    assert oneport_ub > 12
