"""Extension experiment: period/latency across models on random workloads.

The paper's qualitative claims, measured at scale via the planner facade:

* ``P(OVERLAP) <= P(OUTORDER) <= P(INORDER)`` on every graph;
* the one-port lower bound is not always achieved by INORDER (the 23/3
  phenomenon) — we count how often a gap appears;
* communication-aware plans beat the communication-free baseline.
"""

from fractions import Fraction

from repro.analysis import text_table
from repro.core import CommModel, CostModel
from repro.planner import solve
from repro.workloads.generators import random_application, random_execution_graph

from bench_helpers import record

F = Fraction


def sweep(n_instances=8, n_services=5):
    rows = []
    gaps = 0
    for seed in range(n_instances):
        app = random_application(n_services, seed=seed)
        graph = random_execution_graph(app, seed=seed + 100, density=0.4)
        costs = CostModel(graph)
        p_over = solve(graph, objective="period", model=CommModel.OVERLAP).value
        p_in = solve(graph, objective="period", model=CommModel.INORDER).value
        p_out = solve(graph, objective="period", model=CommModel.OUTORDER).value
        lb = costs.period_lower_bound(CommModel.INORDER)
        if p_in > lb:
            gaps += 1
        rows.append((seed, p_over, p_out, p_in, lb))
    return rows, gaps


def test_model_comparison(benchmark):
    rows, gaps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table_rows = [
        (f"seed {seed}", p_over, p_out, p_in, lb)
        for seed, p_over, p_out, p_in, lb in rows
    ]
    record(
        "model_comparison",
        text_table(
            ["instance", "P overlap", "P outorder", "P inorder", "one-port LB"],
            table_rows,
        )
        + f"\ninstances with INORDER above its lower bound: {gaps}/{len(rows)}",
    )
    for _, p_over, p_out, p_in, lb in rows:
        assert p_over <= p_out <= p_in
        assert p_out >= lb or p_over <= lb
