"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table/figure/example of the paper, asserts
the *shape* of the result (who wins, by what factor, where thresholds sit)
and records a human-readable table under ``benchmarks/results/`` so the
paper-vs-measured comparison survives pytest's output capture.

This module is deliberately *not* named ``conftest``: benchmark modules
import it by name, and a plain ``import conftest`` is ambiguous once
``tests/conftest.py`` exists too (whichever directory pytest put on
``sys.path`` first would win).
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record(name: str, text: str) -> None:
    """Write a result table to ``benchmarks/results/<name>.txt`` and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
