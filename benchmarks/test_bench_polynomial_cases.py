"""Experiments Thm 1 / Props 8, 12, 16: the polynomial special cases.

Each polynomial algorithm is benchmarked on growing instances and checked
against brute force on small ones (the optimality assertions live in the
unit tests; here we pin the scaling shape: polynomial runtimes and
bound-achievement on instances far beyond brute-force reach).
"""

from fractions import Fraction

from repro.analysis import text_table
from repro.core import CommModel, CostModel, ExecutionGraph
from repro.optimize import (
    brute_force_chain_latency,
    brute_force_chain_period,
    chain_latency,
    chain_period,
    greedy_chain_latency_order,
    greedy_chain_period_order,
)
from repro.scheduling import schedule_period_overlap, tree_latency
from repro.workloads.generators import random_application, random_forest

from bench_helpers import record

F = Fraction


def test_theorem1_overlap_orchestration(benchmark):
    """Theorem 1: period-optimal OVERLAP orchestration is polynomial."""
    app = random_application(60, seed=7)
    graph = random_forest(app, seed=8)

    def run():
        return schedule_period_overlap(graph)

    plan = benchmark(run)
    bound = CostModel(graph).period_lower_bound(CommModel.OVERLAP)
    rows = [("n=60 random forest: period == bound", "True", str(plan.period == bound))]
    record("theorem1_overlap", text_table(["check", "expected", "measured"], rows))
    assert plan.period == bound
    assert plan.validate().ok


def test_prop8_chain_period_greedy(benchmark):
    """Prop 8: the greedy chain order matches brute force and scales."""
    big = random_application(200, seed=11)

    def run():
        order = greedy_chain_period_order(big, CommModel.INORDER)
        return chain_period(big, order, CommModel.INORDER)

    big_val = benchmark(run)
    small = random_application(7, seed=3)
    rows = []
    for model in (CommModel.OVERLAP, CommModel.INORDER):
        greedy_val = chain_period(
            small, greedy_chain_period_order(small, model), model
        )
        brute_val, _ = brute_force_chain_period(small, model)
        rows.append(
            (f"n=7 greedy == brute force ({model})", "True", str(greedy_val == brute_val))
        )
        assert greedy_val == brute_val
    rows.append(("n=200 greedy chain period", "finite", big_val))
    record("prop8_chain_period", text_table(["check", "expected", "measured"], rows))


def test_prop16_chain_latency_greedy(benchmark):
    """Prop 16: the (1-sigma)/(1+c) rule matches brute force and scales."""
    big = random_application(200, seed=13)

    def run():
        return chain_latency(big, greedy_chain_latency_order(big))

    big_val = benchmark(run)
    small = random_application(7, seed=5)
    greedy_val = chain_latency(small, greedy_chain_latency_order(small))
    brute_val, _ = brute_force_chain_latency(small)
    rows = [
        ("n=7 greedy == brute force", "True", str(greedy_val == brute_val)),
        ("n=200 greedy chain latency", "finite", big_val),
    ]
    record("prop16_chain_latency", text_table(["check", "expected", "measured"], rows))
    assert greedy_val == brute_val


def test_prop12_tree_latency(benchmark):
    """Prop 12 / Algorithm 1: O(n log n) tree latency on a big forest."""
    app = random_application(300, seed=17)
    graph = random_forest(app, seed=18)

    def run():
        return tree_latency(graph)

    val = benchmark(run)
    rows = [("n=300 random forest latency", "finite", val)]
    record("prop12_tree_latency", text_table(["check", "expected", "measured"], rows))
    assert val > 0
