"""Warm-started re-planning vs. cold re-solving on a flash-crowd trace.

Replay a 50-event flash crowd (accelerating admissions, load spikes,
evictions) on a 4-server platform twice per event: the warm incumbent
repaired under a migration budget of 2 voluntary moves, and the cold
from-scratch solve a stateless planner would deploy (placement memo
cleared per event, so its wall time is honest).

Asserted shape — the PR's acceptance criteria, machine-independent:

* **quality**: the warm repair's mean steady-state period stays within
  1.1x of the cold optimum (>= 90% of cold quality);
* **stability**: the warm side migrates fewer than 25% as many services
  as the cold baseline churns.

Records ``benchmarks/results/BENCH_dynamic.json`` (uploaded as a CI
artifact; deliberately *not* in ``compare_bench.BENCH_FILES`` — wall
times move with runner hardware, and the quality/stability shape is
asserted right here) and the human timeline to ``dynamic_replay.txt``.
"""

import json

from repro.core import Platform
from repro.dynamic import flash_crowd_trace, replay

from bench_helpers import RESULTS_DIR, record

#: Acceptance ceilings (ISSUE 9): period within 1.1x of cold, moves
#: under a quarter of the cold churn.
MAX_MEAN_PERIOD_RATIO = 1.1
MAX_MOVE_RATIO = 0.25

N_EVENTS = 50
SEED = 7
BUDGET = 2


def test_flash_crowd_warm_repair_vs_cold():
    trace = flash_crowd_trace(N_EVENTS, seed=SEED)
    report = replay(trace, Platform.homogeneous(4), budget=BUDGET)

    aggregates = report.aggregates()
    assert len(report.steps) == N_EVENTS
    assert aggregates["mean_period_ratio"] is not None
    assert aggregates["mean_period_ratio"] <= MAX_MEAN_PERIOD_RATIO, aggregates
    assert aggregates["move_ratio"] is not None
    assert aggregates["move_ratio"] < MAX_MOVE_RATIO, aggregates
    # The comparison is meaningful only if the cold side actually churns.
    assert report.total_cold_moves > report.total_warm_moves

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_dynamic.json").write_text(
        json.dumps(
            {
                "trace": {
                    "family": "flash",
                    "events": N_EVENTS,
                    "seed": SEED,
                    "budget": BUDGET,
                    "platform": "hom:n=4",
                },
                "aggregates": aggregates,
                "timeline": [step.as_dict() for step in report.steps],
            },
            indent=2,
        )
        + "\n"
    )
    record("dynamic_replay", report.summary_table())
