"""Experiments Figs 9-12 + Prop 17: the executable NP-hardness gadgets.

For each reduction: the forward construction meets the threshold K on
solvable RN3DM instances, and the (structure-restricted or full) decision
procedure rejects unsolvable ones.  Prop 17 reports the measured negative
finding.
"""

import pytest

from repro.analysis import text_table
from repro.reductions import (
    forest_latency,
    minlatency,
    minperiod_oneport,
    minperiod_overlap,
    orchestration_latency,
    orchestration_period,
)
from repro.reductions.partition import PartitionInstance
from repro.reductions.rn3dm import RN3DMInstance, is_solvable

from bench_helpers import record

SOLVABLE = RN3DMInstance((2, 4, 6))
UNSOLVABLE = RN3DMInstance((2, 2, 8, 8))


def test_fig9_orchestration_period(benchmark):
    gadget = orchestration_period.build(SOLVABLE)

    def run():
        return orchestration_period.forward_period(gadget)

    fwd = benchmark(run)
    bad = orchestration_period.build(UNSOLVABLE)
    neg = orchestration_period.decision(bad)
    rows = [
        ("forward period on solvable (K=2n+3)", gadget.K, fwd),
        ("decision on unsolvable (2,2,8,8)", "False", str(neg)),
    ]
    record("fig9_reduction", text_table(["check", "expected", "measured"], rows))
    assert fwd == gadget.K
    assert not neg


def test_fig10_minperiod_overlap(benchmark):
    gadget = minperiod_overlap.build(SOLVABLE)

    def run():
        return minperiod_overlap.forward_period(gadget)

    fwd = benchmark(run)
    bad = minperiod_overlap.build(UNSOLVABLE)
    neg = minperiod_overlap.structure_restricted_decision(bad)
    obs = minperiod_overlap.verify_observations(gadget)
    rows = [
        ("forward period <= K = 3/2", "True", str(fwd <= gadget.K)),
        ("structure decision on unsolvable", "False", str(neg)),
        ("proof observations violated", "0", len(obs)),
    ]
    record("fig10_reduction", text_table(["check", "expected", "measured"], rows))
    assert fwd <= gadget.K and not neg and not obs


def test_fig11_minperiod_oneport(benchmark):
    gadget = minperiod_oneport.build(SOLVABLE)

    def run():
        return minperiod_oneport.forward_period(gadget)

    fwd = benchmark(run)
    bad = minperiod_oneport.build(UNSOLVABLE)
    neg = minperiod_oneport.structure_restricted_decision(bad)
    obs = minperiod_oneport.verify_observations(gadget)
    rows = [
        ("forward period <= K = n+3", "True", str(fwd <= gadget.K)),
        ("structure decision on unsolvable", "False", str(neg)),
        ("proof observations violated", "0", len(obs)),
    ]
    record("fig11_reduction", text_table(["check", "expected", "measured"], rows))
    assert fwd <= gadget.K and not neg and not obs


def test_fig12_orchestration_latency(benchmark):
    gadget = orchestration_latency.build(SOLVABLE)

    def run():
        return orchestration_latency.optimal_latency(gadget)

    opt = benchmark(run)
    bad = orchestration_latency.build(UNSOLVABLE)
    bad_opt = orchestration_latency.optimal_latency(bad)
    rows = [
        ("optimal latency on solvable (K=n+4+n^2)", gadget.K, opt),
        ("optimal latency on unsolvable", f"> {bad.K}", bad_opt),
        ("matches generic branch-and-bound", "True",
         str(opt == orchestration_latency.optimal_latency_branch_and_bound(gadget))),
    ]
    record("fig12_reduction", text_table(["check", "expected", "measured"], rows))
    assert opt == gadget.K
    assert bad_opt > bad.K


def test_minlatency_gadget(benchmark):
    gadget = minlatency.build(SOLVABLE)

    def run():
        return minlatency.optimal_fork_join_latency(gadget)

    opt = benchmark(run)
    bad = minlatency.build(UNSOLVABLE)
    rows = [
        ("solvable optimum <= K", "True", str(opt <= gadget.K)),
        ("unsolvable optimum > K", "True",
         str(minlatency.optimal_fork_join_latency(bad) > bad.K)),
        ("wrong structures above K", "all", "all"
         if all(v > gadget.K for _, v in minlatency.structure_penalties(gadget))
         else "VIOLATION"),
    ]
    record("minlatency_reduction", text_table(["check", "expected", "measured"], rows))
    assert opt <= gadget.K
    assert minlatency.optimal_fork_join_latency(bad) > bad.K


def test_prop17_forest_latency(benchmark):
    """Reproduction finding: the printed Prop-17 gadget is monotone in the
    chained sum — it does not discriminate balanced subsets (see
    EXPERIMENTS.md)."""
    gadget = forest_latency.build(PartitionInstance((3, 5, 3, 5)))

    def run():
        return forest_latency.full_profile(gadget)

    profile = benchmark(run)
    best = min(lat for _, lat in profile)
    full = forest_latency.subset_latency(gadget, range(4))
    rows = [
        ("paper claim: balanced subset optimal", "True", "False (monotone)"),
        ("measured optimum = full chain", "-", str(full == best)),
        ("discriminates solvable vs unsolvable", "True", "False"),
    ]
    record("prop17_reduction", text_table(["check", "paper", "measured"], rows))
    assert full == best  # the measured (negative) finding, pinned
