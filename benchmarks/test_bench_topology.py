"""Hierarchical vs. flat placement on structured (contended) platforms.

For each instance — layered and random DAGs on switch-tree and torus
platforms whose uplinks are bandwidth-shared — run the placement search
past its exhaustive range twice: once from the classic work-onto-speed
greedy seed (``strategy="flat"``) and once from the topology-partitioned
seed (``strategy="hierarchical"``).  Both refine with the identical
first-improvement local search, so the comparison isolates the seed.

Asserted shape (machine-independent):

* the hierarchical strategy's objective is **never worse** than flat on
  any benchmark instance (both values are exact Fractions);
* on at least one instance it is **strictly better** — the partitioned
  seed escapes a local optimum the flat seed converges to;
* wall-clock stays within a generous factor of the flat run (the seed
  is a linear-time partition pass, not a second search).

Records ``benchmarks/results/BENCH_topology.json`` (uploaded as a CI
artifact; deliberately *not* in ``compare_bench.BENCH_FILES`` — wall
times move with runner hardware, and the win/loss shape is asserted
right here) and a human table to ``topology_scaling.txt``.
"""

import json
import time
from fractions import Fraction as F

from repro.analysis import text_table
from repro.core import CommModel, Platform, TorusTopology, TreeTopology
from repro.optimize import Effort
from repro.optimize.placement import clear_placement_memo, optimize_mapping
from repro.workloads.generators import random_application, random_execution_graph

from bench_helpers import RESULTS_DIR, record

#: Generous ceiling on hierarchical/flat wall-time ratio: the seed adds
#: a linear partition pass on top of the shared local search, so even
#: noisy CI runners stay far under this.
MAX_TIME_RATIO = 5.0


def _instances():
    """(label, graph, platform) triples; all past the exhaustive range."""
    out = []
    for n, seed, density in ((10, 3, 0.35), (12, 7, 0.3), (10, 11, 0.4)):
        app = random_application(n, seed=seed, filter_fraction=0.6)
        graph = random_execution_graph(app, seed=seed + 1, density=density)
        tree = Platform(
            topology=TreeTopology(
                racks=4, servers_per_rack=3, up_bw=F(1, 4), speed2=F(2)
            )
        )
        out.append((f"tree4x3/n={n}s{seed}", graph, tree))
        torus = Platform(topology=TorusTopology((4, 3), bw=F(1, 2)))
        out.append((f"torus4x3/n={n}s{seed}", graph, torus))
    return out


def _run(graph, platform, strategy):
    clear_placement_memo()
    started = time.perf_counter()
    value, mapping = optimize_mapping(
        graph, "period", CommModel.OVERLAP, Effort.BOUND, platform,
        exhaustive_limit=0, strategy=strategy,
    )
    wall = time.perf_counter() - started
    return value, mapping, wall


def test_hierarchical_vs_flat_placement():
    rows = []
    payload = []
    strict_wins = 0
    for label, graph, platform in _instances():
        flat_v, _, flat_wall = _run(graph, platform, "flat")
        hier_v, _, hier_wall = _run(graph, platform, "hierarchical")

        assert hier_v <= flat_v, (label, hier_v, flat_v)
        if hier_v < flat_v:
            strict_wins += 1
        if flat_wall > 0.05:  # ratio is meaningless at microsecond scales
            assert hier_wall <= flat_wall * MAX_TIME_RATIO, (
                label, hier_wall, flat_wall,
            )

        gain = float(1 - hier_v / flat_v) * 100
        rows.append([
            label, str(flat_v), str(hier_v), f"{gain:.1f}%",
            f"{flat_wall * 1000:.0f}", f"{hier_wall * 1000:.0f}",
        ])
        payload.append({
            "instance": label,
            "flat_value": str(flat_v),
            "hierarchical_value": str(hier_v),
            "gain_pct": round(gain, 2),
            "flat_ms": round(flat_wall * 1000, 1),
            "hierarchical_ms": round(hier_wall * 1000, 1),
        })

    # The partitioned seed must actually matter somewhere, not just tie.
    assert strict_wins >= 1, payload

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_topology.json").write_text(
        json.dumps({"placement": payload}, indent=2) + "\n"
    )
    record(
        "topology_scaling",
        text_table(
            ["instance", "flat", "hierarchical", "gain", "flat ms", "hier ms"],
            rows,
        ),
    )
