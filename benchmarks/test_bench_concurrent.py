"""Concurrent shared-server mapping benchmark: quality and wall time.

Records machine-readable numbers to
``benchmarks/results/BENCH_concurrent.json`` (and a human table to
``concurrent_scaling.txt``): for growing application counts (k copies of
the Section-2.3 instance) and shrinking platforms (servers << services),
the optimised shared placement's load-balance quality — the achieved
system period against the greedy bin-packing seed and against the
perfect-balance compute floor ``total_work / (m * max_speed)`` — plus the
placement-search wall time.
"""

import json
import time
from fractions import Fraction

from repro.analysis import text_table
from repro.concurrent import MultiApplication
from repro.core import CommModel, CostModel
from repro.optimize import greedy_shared_mapping
from repro.planner import load_platform, solve_concurrent
from repro.workloads import fig1_example

from bench_helpers import RESULTS_DIR, record

F = Fraction

#: (application copies, platform spec) grid — homogeneous scaling plus two
#: heterogeneous spots.
GRID = [
    (1, "hom:n=2"), (1, "hom:n=3"), (1, "hom:n=4"),
    (2, "hom:n=2"), (2, "hom:n=3"), (2, "hom:n=4"),
    (3, "hom:n=3"), (3, "hom:n=4"),
    (4, "hom:n=4"),
    (2, "het:n=3,seed=1"),
    (4, "het:n=4,seed=1"),
]


def _instance(k):
    graph = fig1_example().graph
    return MultiApplication([(f"c{i}", graph) for i in range(k)])


def _compute_floor(multi, platform):
    """Perfect balance: total work over aggregate speed (ignores comm)."""
    costs = CostModel(multi.combined_graph)
    total_work = sum(
        (costs.ccomp(n) for n in multi.combined_graph.nodes), F(0)
    )
    total_speed = sum((s.speed for s in platform.servers), F(0))
    return total_work / total_speed


#: Run the exact (all-Fraction) placement search alongside the certified
#: one on the larger grid points — the fast-vs-exact comparison rows.
EXACT_COMPARE_MIN_SERVICES = 15


def _row(k, spec):
    multi = _instance(k)
    platform = load_platform(spec)
    greedy = greedy_shared_mapping(multi.combined_graph, platform)
    greedy_value = CostModel(
        multi.combined_graph, platform, greedy
    ).period_lower_bound(CommModel.OVERLAP)
    started = time.perf_counter()
    result = solve_concurrent(multi, platform=platform)
    wall = time.perf_counter() - started
    floor = _compute_floor(multi, platform)
    row = {
        "apps": k,
        "services": multi.total_services,
        "platform": spec,
        "servers": len(platform),
        "method": result.method,
        "value": str(result.value),
        "greedy_value": str(greedy_value),
        "improvement": round(float(greedy_value / result.value), 3),
        "balance_floor": str(floor),
        "balance_ratio": round(float(result.value / floor), 3),
        "feasible": result.feasible,
        "wall_s": round(wall, 4),
    }
    if multi.total_services >= EXACT_COMPARE_MIN_SERVICES:
        from repro.planner import clear_default_cache

        clear_default_cache()  # the certified run memoized this placement
        started = time.perf_counter()
        exact = solve_concurrent(multi, platform=platform, exactness="exact")
        clear_default_cache()
        # The certified tier is bit-for-bit the exact one.
        assert exact.value == result.value, (spec, exact.value, result.value)
        row["exact_wall_s"] = round(time.perf_counter() - started, 4)
    return row


def test_concurrent_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: [_row(k, spec) for k, spec in GRID], rounds=1, iterations=1
    )

    # --- assertions: the shape the ISSUE promises -----------------------
    for row in rows:
        value = F(row["value"])
        assert row["feasible"], row
        # The optimiser never loses to its own greedy seed ...
        assert value <= F(row["greedy_value"]), row
        # ... and never beats the perfect-balance compute floor.
        assert value >= F(row["balance_floor"]), row
        assert row["wall_s"] < 10.0, row
    # More servers never hurt — guaranteed only when the larger platform
    # was solved *exhaustively* (any fewer-server assignment embeds into
    # the bigger platform, so the exact optimum is monotone; the local
    # search carries no such guarantee, so its rows are recorded but not
    # compared).
    by_apps = {}
    for row in rows:
        if row["platform"].startswith("hom:"):
            by_apps.setdefault(row["apps"], []).append(
                (row["servers"], F(row["value"]), row["method"])
            )
    compared = 0
    for series in by_apps.values():
        series.sort()
        for (_, worse, _), (_, better, method) in zip(series, series[1:]):
            if method == "shared-exhaustive":
                assert better <= worse, series
                compared += 1
    assert compared >= 1  # the grid must keep the check non-vacuous

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_concurrent.json").write_text(
        json.dumps({"shared_placement": rows}, indent=2) + "\n"
    )
    record(
        "concurrent_scaling",
        text_table(
            ["apps", "services", "platform", "method", "value", "greedy",
             "improv", "floor x", "wall s"],
            [
                [r["apps"], r["services"], r["platform"], r["method"],
                 r["value"], r["greedy_value"], r["improvement"],
                 r["balance_ratio"], r["wall_s"]]
                for r in rows
            ],
        ),
    )
