"""Experiment "Table 1": the paper's 12 complexity results, regenerated."""

from repro.analysis import RESULTS, SPECIAL_CASES, count_by_complexity, render_table

from bench_helpers import record


def test_complexity_table(benchmark):
    table = benchmark(render_table)
    poly, hard = count_by_complexity()
    extra = "\n".join(f"  {name} — {ref}" for name, ref, _ in SPECIAL_CASES)
    record(
        "complexity_table",
        table
        + f"\n\n{poly} polynomial / {hard} NP-hard (paper: 1 / 11)\n"
        + "Polynomial special cases:\n"
        + extra,
    )
    assert len(RESULTS) == 12
    assert (poly, hard) == (1, 11)
    # every NP-hard entry is backed by an executable reduction module
    for r in RESULTS:
        if r.complexity == "NP-hard":
            assert r.artefact.startswith("repro.reductions.")
        else:
            assert r.artefact.startswith("repro.scheduling.")
