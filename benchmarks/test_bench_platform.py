"""Platform-layer benchmark: cost of heterogeneity across instance sizes.

Measures, on star instances of growing size, (a) the Theorem-1 scheduler
on the unit platform versus an alternating-speed heterogeneous platform
with a pinned mapping — the per-solve overhead of bandwidth/speed-scaled
arithmetic — and (b) the placement optimiser's exhaustive-versus-search
regimes on small fan graphs.  Asserts the structural facts (unit parity,
placement never worse than the positional default) and records the timing
table to ``benchmarks/results/platform_scaling.txt`` (the ``make
bench-platform`` target).
"""

import time
from fractions import Fraction

from repro.analysis import text_table
from repro.core import CommModel, CostModel, Mapping, Platform
from repro.optimize import optimize_mapping
from repro.optimize.evaluation import Effort
from repro.scheduling.overlap import schedule_period_overlap
from repro.workloads.generators import alternating_platform, star_instance

from bench_helpers import record

F = Fraction


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, (time.perf_counter() - start) * 1000


def test_platform_scaling_table():
    rows = []
    for leaves in (4, 16, 64, 128):
        app, graph = star_instance(leaves, seed=leaves)
        n = len(app)
        unit = Platform.homogeneous(n)
        het = alternating_platform(n)
        mapping = Mapping.default(graph.nodes, het)

        plan_unit, ms_unit = _timed(lambda: schedule_period_overlap(graph, platform=unit))
        plan_het, ms_het = _timed(
            lambda: schedule_period_overlap(graph, platform=het, mapping=mapping)
        )
        # Unit platform is bit-for-bit the normalised model.
        assert plan_unit.period == CostModel(graph).period_lower_bound(CommModel.OVERLAP)
        # The het schedule still meets its own Theorem-1 bound exactly.
        assert plan_het.period == CostModel(graph, het, mapping).period_lower_bound(
            CommModel.OVERLAP
        )
        overhead = ms_het / ms_unit if ms_unit > 0 else float("inf")
        rows.append(
            (n, plan_unit.period, plan_het.period,
             f"{ms_unit:.2f}", f"{ms_het:.2f}", f"{overhead:.2f}x")
        )
    table = text_table(
        ["services", "unit period", "het period", "unit ms", "het ms", "overhead"],
        rows,
    )

    # Placement search: exhaustive for small spaces, greedy+LS beyond.
    place_rows = []
    for leaves in (2, 3, 5, 8):
        app, graph = star_instance(leaves, seed=7)
        het = alternating_platform(len(app))
        default = Mapping.default(graph.nodes, het)
        default_value = CostModel(graph, het, default).period_lower_bound(
            CommModel.OVERLAP
        )
        (value, _), ms = _timed(
            lambda: optimize_mapping(
                graph, "period", CommModel.OVERLAP, Effort.HEURISTIC, het
            )
        )
        assert value <= default_value  # the optimiser never loses to positional
        place_rows.append(
            (len(app), default_value, value, f"{ms:.1f}")
        )
    place_table = text_table(
        ["services", "positional period", "optimised period", "placement ms"],
        place_rows,
    )
    record(
        "platform_scaling",
        "Theorem-1 scheduler: unit vs heterogeneous platform (star graphs)\n"
        + table
        + "\n\nPlacement optimiser (alternating speeds, star graphs)\n"
        + place_table,
    )
