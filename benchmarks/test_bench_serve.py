"""Planner-daemon load test: requests/sec and latency per traffic mix.

Drives a :class:`~repro.serve.PlannerServer` in-process (one asyncio
loop, no subprocess — the stdio/TCP transports are exercised by the
serve smoke tests; this measures the serving machinery itself) through
three mixes:

* **cold** — distinct workloads, fresh server: every request pays a full
  solve.  The baseline the other mixes are measured against.
* **warm** — the same workloads re-issued to the same server: every
  request is answered from the finished-solve result cache.
* **duplicate-heavy** — many concurrent requests over a few shapes,
  fresh server: in-flight coalescing makes N identical requests cost one
  solve (``O(distinct shapes)`` solves for ``O(requests)`` traffic).

Records ``benchmarks/results/BENCH_serve.json`` (and a human table to
``serve_load.txt``) with requests/sec and p50/p99 latency per mix, plus
the server counters that explain them (solves, coalesced, result-cache
hits).  Asserted floors — the machine-independent claims:

* the duplicate-heavy mix clears **>= 5x** the cold throughput (typical
  headroom is far larger: ~#distinct-shapes/#requests fewer solves);
* the warm mix also clears >= 5x cold (a result-cache hit does no
  solver work at all);
* the counters match the story: cold runs one solve per request, warm
  runs none, duplicate-heavy runs one per *shape*.

``BENCH_serve.json`` is uploaded as a CI artifact but deliberately *not*
added to ``compare_bench.BENCH_FILES``: raw requests/sec moves with
runner hardware; the 5x floors asserted here are the stable claims.
"""

import asyncio
import json
import time

from repro.analysis import text_table
from repro.serve import PlannerServer, ServeConfig

from bench_helpers import RESULTS_DIR, record

#: Cold/warm mix: this many distinct workload shapes, one request each.
DISTINCT = 16

#: Duplicate-heavy mix: total requests spread over DUP_SHAPES shapes.
#: Coalesced requests are nearly free, so a high duplicate count buys
#: assertion headroom (the throughput ratio scales with it) at almost no
#: wall-clock cost.
DUP_REQUESTS = 144
DUP_SHAPES = 4

#: Workload size: n=7 keeps one cold B&B solve ~10 ms, so the whole
#: benchmark stays a few seconds while the mix contrast stays >10x.
SPEC = "random:n=7,seed={seed}"

#: The ISSUE's floor: duplicate-heavy (and warm) rps >= 5x cold rps.
MIN_MIX_SPEEDUP = 5.0


async def _timed_request(server, payload, latencies):
    started = time.perf_counter()
    response = await server.handle_request(payload)
    latencies.append((time.perf_counter() - started) * 1000.0)
    assert response["ok"], response
    return response


async def _run_mix(server, payloads):
    """Issue *payloads* concurrently; returns (responses, latencies_ms,
    wall_s)."""
    latencies = []
    started = time.perf_counter()
    responses = await asyncio.gather(*[
        _timed_request(server, payload, latencies) for payload in payloads
    ])
    wall = time.perf_counter() - started
    return responses, latencies, wall


def _percentile(latencies, fraction):
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _mix_row(name, responses, latencies, wall, server):
    served = [r["served"] for r in responses]
    return {
        "mix": name,
        "requests": len(responses),
        "wall_s": round(wall, 4),
        "rps": round(len(responses) / wall, 1),
        "p50_ms": round(_percentile(latencies, 0.50), 3),
        "p99_ms": round(_percentile(latencies, 0.99), 3),
        "solves": served.count("solve"),
        "coalesced": served.count("coalesced"),
        "result_cache_hits": served.count("result-cache"),
        "evaluation_cache": server.cache.stats().as_dict(),
    }


async def _load_test():
    rows = []

    # --- cold + warm: same server, distinct shapes ----------------------
    server = PlannerServer(ServeConfig(batch_window=0.002))
    cold_payloads = [
        {"op": "solve", "id": i, "workload": SPEC.format(seed=i)}
        for i in range(DISTINCT)
    ]
    responses, latencies, wall = await _run_mix(server, cold_payloads)
    rows.append(_mix_row("cold", responses, latencies, wall, server))

    responses, latencies, wall = await _run_mix(server, cold_payloads)
    rows.append(_mix_row("warm", responses, latencies, wall, server))
    await server.aclose()

    # --- duplicate-heavy: fresh server, few shapes, many requests -------
    server = PlannerServer(ServeConfig(batch_window=0.002))
    dup_payloads = [
        {"op": "solve", "id": i,
         "workload": SPEC.format(seed=100 + i % DUP_SHAPES)}
        for i in range(DUP_REQUESTS)
    ]
    responses, latencies, wall = await _run_mix(server, dup_payloads)
    rows.append(_mix_row("duplicate-heavy", responses, latencies, wall, server))
    await server.aclose()
    return rows


def test_serve_load(benchmark):
    rows = benchmark.pedantic(
        lambda: asyncio.run(_load_test()), rounds=1, iterations=1
    )
    cold, warm, dup = rows

    # --- assertions: the shape the ISSUE promises -----------------------
    assert cold["solves"] == DISTINCT and cold["coalesced"] == 0
    assert warm["result_cache_hits"] == DISTINCT and warm["solves"] == 0
    assert dup["solves"] == DUP_SHAPES
    assert dup["coalesced"] == DUP_REQUESTS - DUP_SHAPES
    # Throughput floors (generous: typical headroom is >10x).
    assert dup["rps"] >= MIN_MIX_SPEEDUP * cold["rps"], (cold, dup)
    assert warm["rps"] >= MIN_MIX_SPEEDUP * cold["rps"], (cold, warm)

    payload = {
        "distinct_shapes": DISTINCT,
        "duplicate_requests": DUP_REQUESTS,
        "duplicate_shapes": DUP_SHAPES,
        "workload": SPEC.format(seed="<seed>"),
        "mixes": rows,
        "speedups": {
            "warm_vs_cold": round(warm["rps"] / cold["rps"], 1),
            "duplicate_vs_cold": round(dup["rps"] / cold["rps"], 1),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_serve.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    table = text_table(
        ["mix", "requests", "wall s", "req/s", "p50 ms", "p99 ms",
         "solves", "coalesced", "cache hits"],
        [
            [r["mix"], r["requests"], r["wall_s"], r["rps"], r["p50_ms"],
             r["p99_ms"], r["solves"], r["coalesced"],
             r["result_cache_hits"]]
            for r in rows
        ],
    )
    record(
        "serve_load",
        f"planner daemon load test over {SPEC.format(seed='<seed>')} "
        "(in-process event loop)\n" + table
        + f"\n\nwarm/cold rps: {payload['speedups']['warm_vs_cold']}x   "
        f"duplicate/cold rps: {payload['speedups']['duplicate_vs_cold']}x"
        f"   (asserted floor: {MIN_MIX_SPEEDUP}x)",
    )
