"""Benchmark-suite conftest (helpers live in ``bench_helpers``).

Kept minimal on purpose: two ``conftest`` modules (this one and
``tests/conftest.py``) must never be imported *by name* from test code —
the benchmark helpers moved to :mod:`bench_helpers` so the import stays
unambiguous regardless of pytest's collection order.
"""
