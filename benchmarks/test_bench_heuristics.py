"""Extension experiment: heuristic quality for the NP-hard MinPeriod.

Exhaustive forest search (exact, Prop 4) versus the chain greedy (Prop 8),
the communication-free baseline re-evaluated with communications, the
greedy forest builder and local search — on random OVERLAP instances, all
dispatched through the planner facade with one shared evaluation cache.
"""

from fractions import Fraction

from repro.analysis import text_table
from repro.planner import EvaluationCache, solve
from repro.workloads.generators import random_application

from bench_helpers import record

F = Fraction

METHODS = ("exhaustive", "chain", "greedy", "local-search", "nocomm")


def sweep(n_instances=6, n=4):
    cache = EvaluationCache()
    rows = []
    for seed in range(n_instances):
        app = random_application(n, seed=seed * 7 + 1)
        values = {
            method: solve(
                app,
                objective="period",
                model="overlap",
                method=method,
                cache=cache,
                schedule=False,
            ).value
            for method in METHODS
        }
        rows.append(
            (
                seed,
                values["exhaustive"],
                values["chain"],
                values["greedy"],
                values["local-search"],
                values["nocomm"],
            )
        )
    return rows, cache


def test_heuristic_quality(benchmark):
    rows, cache = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = [
        (
            f"seed {seed}",
            exact,
            chain_val,
            greedy_val,
            ls_val,
            base_val,
        )
        for seed, exact, chain_val, greedy_val, ls_val, base_val in rows
    ]
    record(
        "heuristic_quality",
        text_table(
            ["instance", "exact", "chain greedy", "forest greedy",
             "greedy+LS", "no-comm baseline"],
            table,
        )
        + f"\nevaluation cache: {cache.misses} computed, {cache.hits} memo hits",
    )
    for _, exact, chain_val, greedy_val, ls_val, base_val in rows:
        assert exact <= ls_val <= greedy_val
        assert exact <= chain_val
        assert exact <= base_val  # baseline never beats the exact optimum
    # Sharing one cache across methods must save recomputation: local
    # search re-scores graphs the exhaustive sweep already evaluated.
    assert cache.hits > 0
