"""Extension experiment: heuristic quality for the NP-hard MinPeriod.

Exhaustive forest search (exact, Prop 4) versus the chain greedy (Prop 8),
the communication-free baseline re-evaluated with communications, the
greedy forest builder and local search — on random OVERLAP instances.
"""

from fractions import Fraction

from repro.analysis import text_table
from repro.core import CommModel, CostModel
from repro.optimize import (
    exhaustive_minperiod,
    greedy_minperiod,
    local_search_minperiod,
    minperiod_chain,
    nocomm_optimal_period_plan,
    period_objective,
)
from repro.workloads.generators import random_application

from conftest import record

F = Fraction


def sweep(n_instances=6, n=4):
    rows = []
    for seed in range(n_instances):
        app = random_application(n, seed=seed * 7 + 1)
        exact, _ = exhaustive_minperiod(app, CommModel.OVERLAP)
        chain_val, _ = minperiod_chain(app, CommModel.OVERLAP)
        greedy_val, greedy_graph = greedy_minperiod(app, CommModel.OVERLAP)
        ls_val, _ = local_search_minperiod(greedy_graph, CommModel.OVERLAP)
        _, base_graph = nocomm_optimal_period_plan(app)
        base_val = period_objective(base_graph, CommModel.OVERLAP)
        rows.append((seed, exact, chain_val, greedy_val, ls_val, base_val))
    return rows


def test_heuristic_quality(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = [
        (
            f"seed {seed}",
            exact,
            chain_val,
            greedy_val,
            ls_val,
            base_val,
        )
        for seed, exact, chain_val, greedy_val, ls_val, base_val in rows
    ]
    record(
        "heuristic_quality",
        text_table(
            ["instance", "exact", "chain greedy", "forest greedy",
             "greedy+LS", "no-comm baseline"],
            table,
        ),
    )
    for _, exact, chain_val, greedy_val, ls_val, base_val in rows:
        assert exact <= ls_val <= greedy_val
        assert exact <= chain_val
        assert exact <= base_val  # baseline never beats the exact optimum
