"""Experiment Fig 4 / B.1: communication costs change the optimal plan.

The 202-service instance: the communication-free optimum (chain of the two
filters feeding all 200 expanders) has OVERLAP period ~200, while the
communication-aware two-fan plan achieves exactly 100.
"""

from fractions import Fraction

from repro.analysis import text_table
from repro.core import CommModel, CostModel
from repro.optimize import nocomm_optimal_period_plan
from repro.scheduling import schedule_period_overlap
from repro.workloads.paper import b1_application, b1_counterexample, b1_nocomm_plan_graph

from bench_helpers import record


def evaluate_b1():
    app = b1_application()
    nocomm_val, nocomm_graph = nocomm_optimal_period_plan(app)
    nocomm_under_overlap = CostModel(nocomm_graph).period_lower_bound(
        CommModel.OVERLAP
    )
    good = b1_counterexample()
    good_period = CostModel(good.graph).period_lower_bound(CommModel.OVERLAP)
    return nocomm_val, nocomm_under_overlap, good_period, good.graph


def test_b1_communication_costs(benchmark):
    nocomm_val, nocomm_overlap, good_period, good_graph = benchmark(evaluate_b1)
    sigma = Fraction(9999, 10000)
    rows = [
        ("no-comm baseline, comm-free period", "<= 100", nocomm_val),
        ("no-comm baseline under OVERLAP", "~200", nocomm_overlap),
        ("two-fan plan under OVERLAP (paper optimum)", "100", good_period),
        ("ratio (baseline / comm-aware)", "~2x", nocomm_overlap / good_period),
    ]
    record("b1_commcost", text_table(["plan", "paper", "measured"], rows))
    # Shape assertions: the no-comm structure collapses, the paper plan wins.
    assert nocomm_val <= 100
    assert nocomm_overlap == 200 * sigma**2  # ~199.96
    assert nocomm_overlap > 100
    assert good_period == 100
    # And the schedule actually exists (Theorem 1 construction validates).
    plan = schedule_period_overlap(good_graph)
    assert plan.period == 100
    assert plan.validate().ok
