"""Experiment Fig 5 / B.2: multi-port beats one-port on latency.

Multi-port (bandwidth-sharing window) latency = 20; one-port schedules
cannot reach 20 (exhaustive saturated-window argument) but 21 is
constructible.
"""

from fractions import Fraction

from repro.analysis import text_table
from repro.core import CommModel, CostModel, validate
from repro.scheduling import (
    oneport_latency_schedule,
    overlap_latency_layered,
    saturated_bipartite_window_feasible,
)
from repro.scheduling.oneport_overlap import pack_bipartite_window
from repro.workloads.paper import b2_latency_ports

from bench_helpers import record

F = Fraction

SENDERS = [f"C{i}" for i in range(1, 7)]
RECEIVERS = [f"C{j}" for j in range(7, 13)]


def evaluate_b2():
    inst = b2_latency_ports()
    multi = overlap_latency_layered(inst.graph)
    oneport_20_possible = saturated_bipartite_window_feasible(
        inst.graph, SENDERS, RECEIVERS
    )
    packing_21 = pack_bipartite_window(inst.graph, SENDERS, RECEIVERS, F(2), F(9))
    greedy = oneport_latency_schedule(inst.graph)
    return multi, oneport_20_possible, packing_21, greedy


def test_b2_latency_separation(benchmark):
    multi, oneport_20, packing_21, greedy = benchmark(evaluate_b2)
    rows = [
        ("multi-port latency (window scheduler)", "20", multi.latency),
        ("one-port latency 20 feasible?", "no", str(oneport_20)),
        ("one-port latency 21 constructible?", "yes (>20 strict)", str(packing_21 is not None)),
        ("one-port greedy upper bound", "> 20", greedy.latency),
    ]
    record("b2_latency_ports", text_table(["quantity", "paper", "measured"], rows))
    assert multi is not None and multi.latency == 20
    assert multi.validate().ok
    assert not oneport_20  # the separation: one-port > 20
    assert packing_21 is not None  # 21 achievable one-port
    assert greedy.latency > 20
