#!/usr/bin/env python
"""Perf-regression guard: diff fresh ``BENCH_*.json`` against a baseline.

The machine-readable benchmark artifacts (``BENCH_search.json``,
``BENCH_concurrent.json``) carry two kinds of numbers:

* **counts** — objective evaluations, expanded/pruned states, quality
  ratios: deterministic, compared **exactly** (a drifted count means the
  algorithm changed, which a perf PR must own up to in the committed
  baseline);
* **wall times** — compared with tolerance: a row slower than
  ``--fail-ratio`` (default 2.0x) fails the run, slower than
  ``--warn-ratio`` (default 1.3x) warns.  Ratios are normalised by a
  machine-speed calibration measured at snapshot and compare time (a CI
  runner 2x slower than the committing machine does not fail every
  row), and rows whose baseline wall time is below ``--min-wall``
  (default 0.05 s) are skipped for timing — at that scale the
  scheduler's noise floor swamps any real signal.  Both keep the CI
  smoke non-flaky.

Usage::

    python benchmarks/compare_bench.py --snapshot          # save committed
    make bench-search bench-concurrent                     # regenerate
    python benchmarks/compare_bench.py                     # diff

``make bench-compare`` runs the three steps in order; CI snapshots the
checked-out artifacts before ``make bench`` and diffs afterwards.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import time
from fractions import Fraction
from pathlib import Path
from typing import Dict, List, Tuple

HERE = Path(__file__).resolve().parent
RESULTS_DIR = HERE / "results"
DEFAULT_BASELINE = HERE / ".bench-baseline"

#: The artifacts under the guard.
BENCH_FILES = ("BENCH_search.json", "BENCH_concurrent.json")

#: Committed calibration of the machine that generated the committed wall
#: times (written by ``--stamp``, which the Makefile bench targets run
#: after regenerating results).  Snapshotted alongside the BENCH files so
#: CI normalises its runner's speed against the *committing* machine.
STAMP_FILE = "BENCH_calibration.json"

#: Keys that identify a row (everything else is a measurement).
ID_KEYS = (
    "n", "seed", "label", "name", "apps", "servers", "services",
    "platform", "mode",
)


CALIBRATION_FILE = "calibration.json"


def _calibrate() -> float:
    """Seconds for a fixed Fraction/float micro-workload on this machine.

    Stored next to the snapshot and measured again at compare time, so
    wall-time ratios are normalised by relative machine speed — a CI
    runner 2x slower than the machine that committed the baseline does
    not hard-fail every row.  The workload mirrors the benchmarks' mix
    (exact rational arithmetic plus float reductions).
    """
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        acc = Fraction(0)
        for i in range(1, 400):
            acc += Fraction(i, i + 1)
            acc = max(acc, Fraction(i, 2))
        facc = 0.0
        for i in range(1, 40_000):
            facc += i / (i + 1.0)
        best = min(best, time.perf_counter() - started)
    return best


def _is_wall_key(key: str) -> bool:
    return "wall" in key and key.endswith("_s")


def _is_derived_timing_key(key: str) -> bool:
    """Ratios of wall times (e.g. ``certified_speedup``): informational
    only — both ingredients are already guarded with tolerance."""
    return "speedup" in key


def _row_id(row: Dict) -> Tuple:
    return tuple((k, row[k]) for k in ID_KEYS if k in row)


def _iter_rows(payload: Dict) -> List[Tuple[str, Dict]]:
    """Flatten ``{section: [row, ...]}`` into ``(section, row)`` pairs."""
    out: List[Tuple[str, Dict]] = []
    for section, rows in payload.items():
        if isinstance(rows, list):
            for row in rows:
                if isinstance(row, dict):
                    out.append((section, row))
    return out


def snapshot(baseline_dir: Path) -> int:
    baseline_dir.mkdir(parents=True, exist_ok=True)
    copied = 0
    for name in BENCH_FILES:
        src = RESULTS_DIR / name
        if src.exists():
            shutil.copy2(src, baseline_dir / name)
            copied += 1
            print(f"snapshot: {src} -> {baseline_dir / name}")
        else:
            print(f"WARN  snapshot: {src} missing, skipped")
    stamp = RESULTS_DIR / STAMP_FILE
    if stamp.exists():
        # The committed stamp of the machine that produced the baseline
        # walls — the reference _speed_factor() normalises against.
        shutil.copy2(stamp, baseline_dir / STAMP_FILE)
        print(f"snapshot: {stamp} -> {baseline_dir / STAMP_FILE}")
    else:
        # No committed stamp: fall back to this machine's calibration
        # (exact for the local snapshot -> regenerate -> compare flow).
        calibration = _calibrate()
        (baseline_dir / CALIBRATION_FILE).write_text(
            json.dumps({"seconds": calibration}) + "\n"
        )
        print(f"snapshot: local calibration {calibration * 1000:.1f} ms")
    if not copied:
        # A fresh clone (or a results/ wipe) has no committed artifacts
        # yet: the guard then has no baseline to diff against, which the
        # compare step reports per-file as a warning — `make bench-compare`
        # must stay runnable end to end, so this is not an error.
        print(
            "WARN  snapshot: no committed BENCH artifacts found — the "
            "compare step will pass with warnings until benchmarks are "
            "generated and committed"
        )
    return 0


def stamp() -> int:
    """Record this machine's calibration next to the results it timed."""
    RESULTS_DIR.mkdir(exist_ok=True)
    calibration = _calibrate()
    (RESULTS_DIR / STAMP_FILE).write_text(
        json.dumps({"seconds": round(calibration, 6)}) + "\n"
    )
    print(f"stamp: {RESULTS_DIR / STAMP_FILE} ({calibration * 1000:.1f} ms)")
    return 0


def _speed_factor(baseline_dir: Path) -> float:
    """``this machine's time / baseline machine's time`` for the
    calibration workload (1.0 when no calibration was snapshotted).
    Clamped to [0.25, 4] so a degenerate measurement cannot hide a real
    regression (or invent one)."""
    path = baseline_dir / STAMP_FILE
    if not path.exists():
        path = baseline_dir / CALIBRATION_FILE
    if not path.exists():
        return 1.0
    base = json.loads(path.read_text()).get("seconds")
    if not base:
        return 1.0
    factor = _calibrate() / base
    return min(4.0, max(0.25, factor))


def compare_file(
    name: str,
    baseline_dir: Path,
    *,
    fail_ratio: float,
    warn_ratio: float,
    min_wall: float,
    speed_factor: float = 1.0,
) -> Tuple[List[str], List[str]]:
    """Returns ``(failures, warnings)`` for one artifact."""
    failures: List[str] = []
    warnings: List[str] = []
    base_path = baseline_dir / name
    fresh_path = RESULTS_DIR / name
    if not base_path.exists():
        warnings.append(f"{name}: no baseline snapshot — skipped")
        return failures, warnings
    if not fresh_path.exists():
        failures.append(f"{name}: fresh results missing (benchmark not run?)")
        return failures, warnings
    base_rows = {
        (section, _row_id(row)): row
        for section, row in _iter_rows(json.loads(base_path.read_text()))
    }
    fresh_rows = {
        (section, _row_id(row)): row
        for section, row in _iter_rows(json.loads(fresh_path.read_text()))
    }
    for key, base in base_rows.items():
        section, row_id = key
        label = f"{name}:{section}:{dict(row_id)}"
        fresh = fresh_rows.get(key)
        if fresh is None:
            failures.append(f"{label}: row disappeared from fresh results")
            continue
        for field, base_value in base.items():
            if field in ID_KEYS or _is_derived_timing_key(field):
                continue
            fresh_value = fresh.get(field)
            if _is_wall_key(field):
                if not isinstance(base_value, (int, float)) or not isinstance(
                    fresh_value, (int, float)
                ):
                    continue  # e.g. null for "infeasible in CI"
                if base_value < min_wall:
                    continue  # noise floor
                ratio = fresh_value / base_value if base_value else float("inf")
                ratio /= speed_factor  # normalise for machine speed
                line = (
                    f"{label}.{field}: {base_value:.4f}s -> {fresh_value:.4f}s "
                    f"({ratio:.2f}x speed-adjusted)"
                )
                if ratio > fail_ratio:
                    failures.append(line)
                elif ratio > warn_ratio:
                    warnings.append(line)
            elif fresh_value != base_value:
                # Counts, values, flags: deterministic — exact match or bust.
                failures.append(
                    f"{label}.{field}: {base_value!r} -> {fresh_value!r} "
                    f"(count-type metrics must match the baseline exactly)"
                )
    added = set(fresh_rows) - set(base_rows)
    for section, row_id in sorted(added, key=repr):
        warnings.append(f"{name}:{section}:{dict(row_id)}: new row (no baseline)")
    return failures, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--snapshot", action="store_true",
        help="copy the current BENCH_*.json into the baseline dir and exit",
    )
    parser.add_argument(
        "--stamp", action="store_true",
        help="record this machine's calibration next to the results "
        "(run after regenerating benchmarks; the stamp is committed)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"baseline directory (default {DEFAULT_BASELINE})",
    )
    parser.add_argument("--fail-ratio", type=float, default=2.0)
    parser.add_argument("--warn-ratio", type=float, default=1.3)
    parser.add_argument(
        "--min-wall", type=float, default=0.05,
        help="ignore wall-time rows whose baseline is below this (seconds)",
    )
    args = parser.parse_args(argv)

    if args.stamp:
        return stamp()
    if args.snapshot:
        return snapshot(args.baseline)

    speed_factor = _speed_factor(args.baseline)
    all_failures: List[str] = []
    all_warnings: List[str] = []
    for name in BENCH_FILES:
        failures, warnings = compare_file(
            name,
            args.baseline,
            fail_ratio=args.fail_ratio,
            warn_ratio=args.warn_ratio,
            min_wall=args.min_wall,
            speed_factor=speed_factor,
        )
        all_failures.extend(failures)
        all_warnings.extend(warnings)

    for line in all_warnings:
        print(f"WARN  {line}")
    for line in all_failures:
        print(f"FAIL  {line}")
    if all_failures:
        print(f"\n{len(all_failures)} perf regression(s) against the baseline")
        return 1
    print(
        f"perf guard OK ({len(all_warnings)} warning(s), "
        f"fail>{args.fail_ratio}x warn>{args.warn_ratio}x "
        f"min-wall {args.min_wall}s, machine speed factor "
        f"{speed_factor:.2f})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
